"""Command-line interface for the reproduction.

Subcommands:

* ``experiment`` — run the Section 5 study (time or cost minimization)
  and print the summary table plus the corresponding figure panels;
* ``example``    — replay the Section 4 worked example with a Gantt
  chart of the alternatives found;
* ``figures``    — regenerate one specific paper figure (4, 5 or 6);
* ``complexity`` — time ALP/AMP vs backfilling over growing slot lists;
* ``vo``         — run the iterative metascheduler against a synthetic
  virtual organization and print the workload-trace summary;
* ``stats``      — render the summary of saved telemetry trace(s);
  several shards (or ``--merge``) are merged into one logical trace
  first, and ``--prometheus`` emits the text exposition format instead;
* ``explain``    — replay the recorded decision path of one job
  (``--job J``) from a trace's decision log;
* ``profile``    — per-phase cost attribution (index scan, feasibility,
  cross-job subtraction, DP, journal fsync, …) of a saved trace.

Every run-something subcommand also accepts the telemetry pair
``--metrics`` (print the counter/histogram/span summary after the
command) and ``--trace FILE`` (dump the full telemetry state as JSONL,
replayable through ``stats``).  Telemetry stays disabled — and free —
unless one of the two is given.  ``experiment --workers N --trace FILE``
writes one shard per worker (``FILE`` → ``stem.wK.jsonl``); merge them
with ``stats --merge``.

Examples::

    repro-scheduler experiment --objective time --iterations 2000
    repro-scheduler experiment --iterations 200 --metrics
    repro-scheduler figures --figure 6 --iterations 1000 --seed 7
    repro-scheduler example
    repro-scheduler vo --until 2000 --jobs 25 --trace vo.jsonl
    repro-scheduler stats vo.jsonl
    repro-scheduler explain vo.jsonl --job user-job3
    repro-scheduler profile run.w0.jsonl run.w1.jsonl
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.grid.resilience import FailureConfig
    from repro.sim.experiment import ExperimentResult

from repro import obs
from repro.core import (
    AdmissionRejectedError,
    Criterion,
    Job,
    SchedulingError,
    SlotSearchAlgorithm,
)
from repro.core import alp as alp_module
from repro.core import amp as amp_module
from repro.sim import (
    ExperimentConfig,
    ExperimentRunner,
    JobGenerator,
    SlotGenerator,
    SlotGeneratorConfig,
)

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer (clear error, exit 2)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive, finite float (clear error, exit 2)."""
    import math

    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive finite number, got {text}")
    return value


def _failure_config(args: argparse.Namespace) -> "FailureConfig | None":
    """Build the optional FailureConfig from --mtbf/--mttr flags.

    Raises:
        SchedulingError: For non-positive or non-finite values (argparse
            catches these first for CLI flags; this guards programmatic
            callers building a namespace by hand).
    """
    mtbf = getattr(args, "mtbf", None)
    mttr = getattr(args, "mttr", None)
    if mtbf is None and mttr is None:
        return None
    from repro.grid import FailureConfig

    return FailureConfig(
        mtbf=mtbf if mtbf is not None else 2000.0,
        mttr=mttr if mttr is not None else 200.0,
        seed=getattr(args, "failure_seed", 0),
    )


def _run_experiment(
    objective: Criterion,
    iterations: int,
    seed: int,
    rho: float,
    workers: int | None = None,
    failures: "FailureConfig | None" = None,
    checkpoint: str | None = None,
    resume: bool = False,
    trace_base: str | None = None,
    search_shards: int = 1,
) -> "ExperimentResult":
    config = ExperimentConfig(
        objective=objective,
        iterations=iterations,
        seed=seed,
        rho=rho,
        failures=failures,
        search_shards=search_shards,
    )
    if workers is not None:
        from repro.sim import ParallelRunner

        return ParallelRunner(config, workers=workers).run(
            checkpoint=checkpoint, resume=resume, trace_base=trace_base
        )
    return ExperimentRunner(config).run(checkpoint=checkpoint, resume=resume)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.sim import render_figure4, render_figure5, render_figure6, summarize, summary_table

    objective = Criterion(args.objective)
    failures = _failure_config(args)
    if args.resume and args.checkpoint is None:
        print("error: --resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.checkpoint is not None and args.resume:
        from repro.sim import ExperimentCheckpoint, config_fingerprint  # noqa: F401

        # Resume status goes to stderr so stdout stays byte-comparable
        # with an uninterrupted run (the CI crash-resume smoke diffs it).
        print(
            f"resuming from checkpoint {args.checkpoint}",
            file=sys.stderr,
        )
    # A parallel run cannot record into the parent's telemetry context
    # (workers are separate processes), so --workers plus --trace routes
    # through per-worker shard files instead.
    trace_base: str | None = None
    if args.workers is not None and getattr(args, "trace", None):
        trace_base = args.trace
    result = _run_experiment(
        objective,
        args.iterations,
        args.seed,
        args.rho,
        workers=args.workers,
        failures=failures,
        checkpoint=args.checkpoint,
        resume=args.resume,
        trace_base=trace_base,
        search_shards=args.search_shards,
    )
    if trace_base is not None:
        from pathlib import Path

        base = Path(trace_base)
        pattern = base.with_name(f"{base.stem}.w*{base.suffix or '.jsonl'}")
        print(
            f"per-worker trace shards: {pattern} "
            f"(merge with: repro-scheduler stats --merge {pattern})",
            file=sys.stderr,
        )
    if failures is not None:
        print(
            f"failure injection: mtbf={failures.mtbf:g}, mttr={failures.mttr:g}, "
            f"seed={failures.seed} (per-node outage streams carved out of "
            "every iteration's slot list)"
        )
        print()
    print(summary_table(summarize(result)))
    print()
    if objective is Criterion.TIME:
        print(render_figure4(result))
        print()
        print(render_figure5(result, first_n=min(300, result.counted)))
    else:
        print(render_figure6(result))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.sim import render_figure4, render_figure5, render_figure6

    objective = Criterion.COST if args.figure == 6 else Criterion.TIME
    result = _run_experiment(objective, args.iterations, args.seed, rho=1.0)
    if args.figure == 4:
        print(render_figure4(result))
    elif args.figure == 5:
        print(render_figure5(result, first_n=min(args.first_n, result.counted)))
    else:
        print(render_figure6(result))
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    from repro.core import find_alternatives
    from repro.examples_data import HORIZON, build_example
    from repro.sim.gantt import GanttChart

    example = build_example()
    algorithm = SlotSearchAlgorithm(args.algorithm)
    result = find_alternatives(example.slots, example.batch, algorithm)
    chart = GanttChart(HORIZON)
    chart.paint_slots(example.slots)
    labelled = [
        (f"{job.name}#{index + 1}", window)
        for job, windows in result.alternatives.items()
        for index, window in enumerate(windows)
    ]
    chart.paint_windows(labelled)
    print(chart.render(title=f"Section 4 example — all {algorithm.name} alternatives"))
    print()
    for job, windows in result.alternatives.items():
        print(f"{job.name}: {len(windows)} alternatives")
    return 0


def _cmd_complexity(args: argparse.Namespace) -> int:
    from repro.baselines import backfill_find_window
    from repro.core import ResourceRequest
    from repro.sim import table

    rows = []
    for count in args.sizes:
        config = SlotGeneratorConfig(slot_count_range=(count, count))
        slots = SlotGenerator(config, seed=args.seed).generate()
        request = ResourceRequest(node_count=4, volume=100.0, max_price=4.0)
        timings = {}
        for label, finder in (
            ("ALP", lambda s, r: alp_module.find_window(s, r)),
            ("AMP", lambda s, r: amp_module.find_window(s, r)),
            ("backfill", backfill_find_window),
        ):
            started = time.perf_counter()
            for _ in range(args.repeats):
                finder(slots, request)
            timings[label] = (time.perf_counter() - started) / args.repeats
        rows.append(
            [str(count)] + [f"{timings[name] * 1e3:.3f}" for name in ("ALP", "AMP", "backfill")]
        )
    print(table(rows, header=["slots", "ALP ms", "AMP ms", "backfill ms"]))
    return 0


def _cmd_vo(args: argparse.Namespace) -> int:
    from repro.grid import (
        ClusterSpec,
        LocalJobFlow,
        Metascheduler,
        RetryPolicy,
        SimulationDriver,
        VOEnvironment,
    )

    environment = VOEnvironment.generate(
        [
            ClusterSpec("alpha", node_count=args.nodes // 2),
            ClusterSpec("beta", node_count=args.nodes - args.nodes // 2),
        ],
        seed=args.seed,
    )
    flow = LocalJobFlow(seed=args.seed)
    for cluster in environment.clusters:
        flow.occupy(cluster, 0.0, args.until + 1000.0)
    failures = _failure_config(args)
    recovery = (
        RetryPolicy(max_revocations=args.max_revocations) if args.recovery else None
    )
    meta = Metascheduler(
        environment,
        period=args.period,
        horizon=args.horizon,
        recovery=recovery,
        max_pending=args.max_pending,
        search_shards=args.search_shards,
    )
    generator = JobGenerator(seed=args.seed)
    rng = random.Random(args.seed)
    shed = 0
    for index in range(args.jobs):
        request = generator.generate_request()
        job = Job(request, name=f"user-job{index}")
        at_time = rng.uniform(0.0, args.until / 2)
        try:
            meta.submit(job, at_time=at_time)
        except AdmissionRejectedError:
            shed += 1
    if shed:
        print(
            f"admission control: {shed}/{args.jobs} submissions shed "
            f"(backlog limit {args.max_pending})"
        )
    if failures is not None:
        driver = SimulationDriver(meta)
        driver.add_ticks(0.0, args.until)
        outages = driver.add_failures(failures, 0.0, args.until)
        driver.run()
        revocations = sum(report.revocations for report in meta.reports)
        hot_swaps = sum(report.hot_swaps for report in meta.reports)
        replacements = sum(report.replacements for report in meta.reports)
        dropped = sum(report.recovery_rejections for report in meta.reports)
        print(
            f"failures: {outages} outages (mtbf={failures.mtbf:g}, "
            f"mttr={failures.mttr:g}), {revocations} revocations | "
            f"recovery: {hot_swaps} hot-swapped, {replacements} re-searched, "
            f"{revocations - hot_swaps - replacements - dropped} resubmitted, "
            f"{dropped} dropped"
        )
    else:
        meta.run(until=args.until)
    print(meta.trace.summary())
    print(
        f"iterations: {len(meta.reports)}, backlog: {meta.backlog()}, "
        f"utilization: {environment.utilization(0.0, args.until):.2%}"
    )
    if args.statements:
        from repro.grid import owner_statement, user_statement

        print("\nowners' statement:")
        print(owner_statement(environment, 0.0, args.until + args.horizon).render())
        print("\nusers' statement:")
        print(user_statement(meta.trace).render())
    else:
        print(
            f"owner income: {environment.total_income(0.0, args.until + args.horizon):.2f} "
            "(pass --statements for full billing)"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sim.sensitivity import render_sweep, sweep

    points = sweep(
        args.parameter,
        args.values,
        objective=Criterion(args.objective),
        iterations=args.iterations,
        seed=args.seed,
    )
    print(render_sweep(points))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.sim.reporting import experiments_report

    report = experiments_report(iterations=args.iterations, seed=args.seed)
    if args.output is not None:
        try:
            with open(args.output, "w", encoding="utf-8") as stream:
                stream.write(report)
                stream.write("\n")
        except OSError as error:
            print(f"error: cannot write report: {error}", file=sys.stderr)
            return 2
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


def _load_trace(paths: Sequence[str], merge: bool) -> "obs.TraceData":
    """Read trace file(s); several paths (or ``--merge``) are merged.

    Raises:
        SchedulingError: Via :exc:`~repro.core.errors.TelemetryError`
            on a missing/malformed file or mixed-run shards (exit 2).
    """
    if merge or len(paths) > 1:
        return obs.merge_trace_files(list(paths))
    return obs.read_trace(paths[0])


def _reject_empty_trace(data: "obs.TraceData", paths: Sequence[str]) -> int | None:
    """Exit code 2 with a one-line diagnostic for an empty trace, else None."""
    if not data.has_data:
        print(
            f"error: {', '.join(paths)}: trace contains no records — was the "
            "run started with --trace/--metrics or REPRO_TELEMETRY=1?",
            file=sys.stderr,
        )
        return 2
    return None


def _cmd_stats(args: argparse.Namespace) -> int:
    data = _load_trace(args.trace_file, args.merge)
    failed = _reject_empty_trace(data, args.trace_file)
    if failed is not None:
        return failed
    if args.prometheus:
        print(obs.prometheus_from_trace(data))
        return 0
    print(obs.render_trace_summary(data))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    data = _load_trace(args.trace_file, args.merge)
    failed = _reject_empty_trace(data, args.trace_file)
    if failed is not None:
        return failed
    decisions = data.decisions
    if args.iteration is not None:
        decisions = [
            record for record in decisions if record.get("iteration") == args.iteration
        ]
    print(obs.render_explain(decisions, args.job))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    data = _load_trace(args.trace_file, args.merge)
    failed = _reject_empty_trace(data, args.trace_file)
    if failed is not None:
        return failed
    print(obs.render_profile(data))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from repro.chaos import run_campaigns

    names = args.campaign if args.campaign else None
    if args.dir is not None:
        report = run_campaigns(args.dir, seed=args.chaos_seed, names=names)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
            report = run_campaigns(scratch, seed=args.chaos_seed, names=names)
    print(report.summary())
    return 0 if report.ok else 2


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-scheduler",
        description="Economic slot selection and co-allocation (PaCT 2011 reproduction)",
    )
    # Telemetry options are shared by every run-something subcommand via
    # a parent parser, so they can appear *after* the subcommand name
    # (``repro-scheduler experiment --metrics``).
    telemetry_options = argparse.ArgumentParser(add_help=False)
    telemetry_options.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write the run's telemetry (metrics, spans, events) as JSONL to FILE",
    )
    telemetry_options.add_argument(
        "--metrics",
        action="store_true",
        help="print the telemetry summary (counters, histograms, spans) after the run",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiment = sub.add_parser(
        "experiment", help="run the Section 5 study", parents=[telemetry_options]
    )
    experiment.add_argument("--objective", choices=["time", "cost"], default="time")
    experiment.add_argument("--iterations", type=_positive_int, default=1000)
    experiment.add_argument("--seed", type=int, default=20110368)
    experiment.add_argument("--rho", type=_positive_float, default=1.0)
    experiment.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "shard the iterations across N processes via the seed-sharded "
            "ParallelRunner (results are identical for every N; omit for "
            "the historical single-stream serial runner)"
        ),
    )
    experiment.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "record every completed iteration to PATH (checksummed JSONL) "
            "so a killed run can be resumed with --resume; without "
            "--resume an existing file is replaced"
        ),
    )
    experiment.add_argument(
        "--resume",
        action="store_true",
        help=(
            "skip iterations already recorded in --checkpoint PATH; the "
            "merged result is identical to an uninterrupted run"
        ),
    )
    experiment.add_argument(
        "--mtbf",
        type=_positive_float,
        default=None,
        help="enable failure injection: mean time between failures per node",
    )
    experiment.add_argument(
        "--mttr",
        type=_positive_float,
        default=None,
        help="mean time to repair for injected failures",
    )
    experiment.add_argument(
        "--failure-seed",
        type=int,
        default=0,
        dest="failure_seed",
        help="master seed of the per-node outage streams",
    )
    experiment.add_argument(
        "--search-shards",
        type=_positive_int,
        default=1,
        dest="search_shards",
        metavar="N",
        help=(
            "partition-parallel phase-1 slot search inside every "
            "scheduling cycle (byte-identical to serial for any N; "
            "composes with --workers, which shards whole iterations)"
        ),
    )
    experiment.set_defaults(handler=_cmd_experiment)

    figures = sub.add_parser(
        "figures", help="regenerate one paper figure", parents=[telemetry_options]
    )
    figures.add_argument("--figure", type=int, choices=[4, 5, 6], required=True)
    figures.add_argument("--iterations", type=int, default=1000)
    figures.add_argument("--seed", type=int, default=20110368)
    figures.add_argument("--first-n", type=int, default=300, dest="first_n")
    figures.set_defaults(handler=_cmd_figures)

    example = sub.add_parser(
        "example",
        help="replay the Section 4 worked example",
        parents=[telemetry_options],
    )
    example.add_argument("--algorithm", choices=["alp", "amp"], default="amp")
    example.set_defaults(handler=_cmd_example)

    complexity = sub.add_parser(
        "complexity", help="ALP/AMP vs backfill timing", parents=[telemetry_options]
    )
    complexity.add_argument("--sizes", type=int, nargs="+", default=[200, 400, 800, 1600])
    complexity.add_argument("--repeats", type=int, default=5)
    complexity.add_argument("--seed", type=int, default=1)
    complexity.set_defaults(handler=_cmd_complexity)

    vo = sub.add_parser(
        "vo", help="iterative metascheduler demo", parents=[telemetry_options]
    )
    vo.add_argument("--nodes", type=int, default=12)
    vo.add_argument("--jobs", type=int, default=20)
    vo.add_argument("--until", type=float, default=2000.0)
    vo.add_argument("--period", type=float, default=100.0)
    vo.add_argument("--horizon", type=float, default=800.0)
    vo.add_argument("--seed", type=int, default=7)
    vo.add_argument(
        "--statements",
        action="store_true",
        help="print the owners' and users' billing statements",
    )
    vo.add_argument(
        "--mtbf",
        type=_positive_float,
        default=None,
        help="enable node failures: mean time between failures per node",
    )
    vo.add_argument(
        "--mttr",
        type=_positive_float,
        default=None,
        help="mean time to repair for injected node failures",
    )
    vo.add_argument(
        "--max-pending",
        type=_positive_int,
        default=None,
        dest="max_pending",
        metavar="N",
        help=(
            "bounded admission: shed submissions once the backlog reaches "
            "N instead of growing the queue without bound"
        ),
    )
    vo.add_argument(
        "--failure-seed",
        type=int,
        default=0,
        dest="failure_seed",
        help="master seed of the per-node outage streams",
    )
    vo.add_argument(
        "--recovery",
        action="store_true",
        help=(
            "recover revoked jobs via retained phase-1 alternatives "
            "(hot-swap), immediate re-search, then backoff resubmission"
        ),
    )
    vo.add_argument(
        "--max-revocations",
        type=int,
        default=3,
        dest="max_revocations",
        help="per-job revocation budget before a typed rejection",
    )
    vo.add_argument(
        "--search-shards",
        type=_positive_int,
        default=None,
        dest="search_shards",
        metavar="N",
        help=(
            "partition-parallel phase-1 slot search in every scheduling "
            "cycle of the VO (byte-identical to the serial cycle)"
        ),
    )
    vo.set_defaults(handler=_cmd_vo)

    sweep = sub.add_parser(
        "sweep", help="parameter-sensitivity sweep", parents=[telemetry_options]
    )
    sweep.add_argument(
        "--parameter",
        required=True,
        choices=[
            "performance_ceiling",
            "same_start_probability",
            "slot_count",
            "price_cap_ceiling",
        ],
    )
    sweep.add_argument("--values", type=float, nargs="+", required=True)
    sweep.add_argument("--objective", choices=["time", "cost"], default="time")
    sweep.add_argument("--iterations", type=int, default=150)
    sweep.add_argument("--seed", type=int, default=20110368)
    sweep.set_defaults(handler=_cmd_sweep)

    report = sub.add_parser(
        "report",
        help="generate the EXPERIMENTS.md paper-vs-measured report",
        parents=[telemetry_options],
    )
    report.add_argument("--iterations", type=int, default=2000)
    report.add_argument("--seed", type=int, default=20110368)
    report.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the Markdown report to PATH instead of stdout",
    )
    report.set_defaults(handler=_cmd_report)

    # The trace-reading subcommands share the shard arguments: one or
    # more trace files, merged into one logical trace when several are
    # given (or when --merge forces it for a single file).
    shard_options = argparse.ArgumentParser(add_help=False)
    shard_options.add_argument(
        "trace_file",
        nargs="+",
        help=(
            "JSONL trace written by --trace (several worker shards of "
            "one run are merged before rendering)"
        ),
    )
    shard_options.add_argument(
        "--merge",
        action="store_true",
        help="merge the given shard files into one logical trace",
    )

    stats = sub.add_parser(
        "stats",
        help="render the summary of saved telemetry trace(s)",
        parents=[shard_options],
    )
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="emit the Prometheus text exposition format instead of the summary",
    )
    stats.set_defaults(handler=_cmd_stats)

    explain = sub.add_parser(
        "explain",
        help="replay the recorded decision path of one job",
        parents=[shard_options],
    )
    explain.add_argument(
        "--job",
        required=True,
        metavar="NAME",
        help="job name as recorded in the trace's decision log",
    )
    explain.add_argument(
        "--iteration",
        type=int,
        default=None,
        metavar="N",
        help="restrict the path to one experiment iteration",
    )
    explain.set_defaults(handler=_cmd_explain)

    profile = sub.add_parser(
        "profile",
        help="per-phase cost attribution of saved telemetry trace(s)",
        parents=[shard_options],
    )
    profile.set_defaults(handler=_cmd_profile)

    chaos = sub.add_parser(
        "chaos",
        help="run the deterministic fault-injection campaigns",
        parents=[telemetry_options],
    )
    chaos.add_argument(
        "--chaos-seed",
        type=int,
        default=20110368,
        metavar="SEED",
        help="master seed every campaign derives its fault placement from",
    )
    chaos.add_argument(
        "--campaign",
        action="append",
        choices=["sweep", "experiment", "io", "pool", "shard"],
        metavar="NAME",
        help=(
            "run only this campaign (repeatable); default runs all of "
            "sweep, experiment, io, pool, shard"
        ),
    )
    chaos.add_argument(
        "--dir",
        metavar="PATH",
        default=None,
        help=(
            "scratch directory for journals and checkpoints (kept after "
            "the run for inspection); default: a temporary directory"
        ),
    )
    chaos.set_defaults(handler=_cmd_chaos)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code.

    Library failures (:class:`~repro.core.SchedulingError`, which covers
    telemetry-trace errors too) are reported on stderr and map to exit
    code 2; argparse usage errors (including the positive-value checks on
    ``--iterations``/``--workers``/``--mtbf``/``--mttr``) are converted
    from their ``SystemExit`` into the same exit code 2 so embedders
    calling :func:`main` directly observe a return, not an exit.
    """
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_request:
        return int(exit_request.code or 0)
    trace_path: str | None = getattr(args, "trace", None)
    wants_metrics: bool = getattr(args, "metrics", False)
    telemetry = None
    if trace_path or wants_metrics:
        telemetry = obs.configure(enabled=True)
    try:
        if telemetry is not None:
            with telemetry.span(f"cli.{args.command}"):
                code = args.handler(args)
        else:
            code = args.handler(args)
        if telemetry is not None:
            if wants_metrics:
                print()
                print("== telemetry summary ==")
                print(obs.render_summary(telemetry))
            if trace_path:
                lines = obs.write_trace(trace_path, telemetry)
                print(
                    f"telemetry trace: {lines} records written to {trace_path}",
                    file=sys.stderr,
                )
    except SchedulingError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed stdout mid-report; reopen it onto
        # /dev/null so the interpreter's exit flush stays quiet.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    finally:
        if telemetry is not None:
            obs.disable()
    return code


if __name__ == "__main__":
    sys.exit(main())
