"""The Section 4 worked example — a deterministic reference environment.

The paper demonstrates AMP on a six-node environment (``cpu1`` … ``cpu6``,
each with its own unit cost), seven already-scheduled local tasks
``p1`` … ``p7``, ten vacant slots, and a batch of three jobs.  The exact
slot chart (Fig. 2 (a)) is only published as a picture, so this module
reconstructs a layout that *provably* reproduces every fact the text
states:

* the earliest AMP window for **Job 1** is ``W1`` on ``cpu1`` + ``cpu4``
  over ``[150, 230]`` with total unit cost 10, and earlier windows exist
  but fail the cost constraint;
* the earliest window for **Job 2** (after subtracting ``W1``) is ``W2``
  on ``cpu1`` + ``cpu2`` + ``cpu4`` with total unit cost 14;
* the earliest window for **Job 3** is ``W3`` over ``[450, 500]``;
* ``cpu6`` costs 12 per unit, so ALP (whose per-slot cap for Job 2 is
  ``30 / 3 = 10``) can never use it, while AMP finds alternatives on it.

All nodes have performance 1 (the example is deliberately uniform, so
windows are rectangular).  ``tests/test_paper_example.py`` asserts each
fact above against the real algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.job import Batch, Job, ResourceRequest
from repro.core.resource import Resource
from repro.core.slot import Slot, SlotList

__all__ = [
    "LocalTask",
    "PaperExample",
    "build_example",
    "HORIZON",
    "NODE_PRICES",
]

#: Scheduling horizon of the example chart, in model time units.
HORIZON: tuple[float, float] = (0.0, 600.0)

#: Unit prices of the six nodes.  ``cpu6`` is the expensive node (price
#: 12) that distinguishes AMP from ALP in the example.
NODE_PRICES: dict[str, float] = {
    "cpu1": 5.0,
    "cpu2": 4.0,
    "cpu3": 2.0,
    "cpu4": 5.0,
    "cpu5": 3.0,
    "cpu6": 12.0,
}


@dataclass(frozen=True)
class LocalTask:
    """An owner's local task already occupying a node (``p1`` … ``p7``)."""

    name: str
    node: str
    start: float
    end: float


#: The seven local tasks whose occupancy produces the ten vacant slots.
LOCAL_TASKS: tuple[LocalTask, ...] = (
    LocalTask("p1", "cpu1", 0.0, 150.0),
    LocalTask("p2", "cpu2", 0.0, 180.0),
    LocalTask("p3", "cpu3", 90.0, 450.0),
    LocalTask("p4", "cpu4", 0.0, 150.0),
    LocalTask("p5", "cpu5", 20.0, 450.0),
    LocalTask("p6", "cpu6", 250.0, 300.0),
    LocalTask("p7", "cpu2", 400.0, 420.0),
)


@dataclass(frozen=True)
class PaperExample:
    """The assembled example environment.

    Attributes:
        nodes: ``cpu1`` … ``cpu6`` keyed by name.
        local_tasks: The seven local tasks ``p1`` … ``p7``.
        slots: The ten vacant slots, ordered by start time (Fig. 2 (a)).
        batch: The three-job batch; Job 1 has the highest priority.
    """

    nodes: dict[str, Resource]
    local_tasks: tuple[LocalTask, ...]
    slots: SlotList
    batch: Batch

    @property
    def jobs(self) -> tuple[Job, Job, Job]:
        """``(job1, job2, job3)`` in priority order."""
        jobs = self.batch.jobs
        return (jobs[0], jobs[1], jobs[2])


def _vacant_spans(busy: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Complement of the busy intervals within the horizon."""
    lo, hi = HORIZON
    spans: list[tuple[float, float]] = []
    cursor = lo
    for start, end in sorted(busy):
        if start > cursor:
            spans.append((cursor, start))
        cursor = max(cursor, end)
    if cursor < hi:
        spans.append((cursor, hi))
    return spans


def build_example() -> PaperExample:
    """Construct the Section 4 environment from the local-task occupancy.

    The vacant slots are *derived* from the seven local tasks rather than
    hard-coded, exercising the same occupancy-complement path the grid
    substrate uses.
    """
    nodes = {
        name: Resource(name, performance=1.0, price=price)
        for name, price in NODE_PRICES.items()
    }
    busy_by_node: dict[str, list[tuple[float, float]]] = {name: [] for name in nodes}
    for task in LOCAL_TASKS:
        busy_by_node[task.node].append((task.start, task.end))
    slots = SlotList()
    for name, node in nodes.items():
        for start, end in _vacant_spans(busy_by_node[name]):
            slots.insert(Slot(node, start, end))

    # Job requirements exactly as printed in Section 4.  The "maximum
    # total window cost per time" limits translate to per-slot caps of
    # 10/2 = 5, 30/3 = 10 and 6/2 = 3 respectively, and to AMP budgets
    # S = C·t·N of 10·80 = 800, 30·30 = 900 and 6·50 = 300.
    job1 = Job(
        ResourceRequest(node_count=2, volume=80.0, max_price=10.0 / 2),
        name="job1",
        priority=0,
    )
    job2 = Job(
        ResourceRequest(node_count=3, volume=30.0, max_price=30.0 / 3),
        name="job2",
        priority=1,
    )
    job3 = Job(
        ResourceRequest(node_count=2, volume=50.0, max_price=6.0 / 2),
        name="job3",
        priority=2,
    )
    return PaperExample(
        nodes=nodes,
        local_tasks=LOCAL_TASKS,
        slots=slots,
        batch=Batch([job1, job2, job3]),
    )
