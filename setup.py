"""Legacy setuptools entry point.

Kept so that ``python setup.py develop`` works on minimal environments
without the ``wheel`` package (PEP 660 editable installs require it).
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
