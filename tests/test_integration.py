"""End-to-end integration tests across all packages.

These tie generators → search → optimization → audit → grid commitment
into single scenarios and check the global invariants the subsystem
tests can't see.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchScheduler,
    Criterion,
    InfeasiblePolicy,
    Job,
    SchedulerConfig,
    SlotSearchAlgorithm,
    audit_outcome,
    audit_windows,
    time_quota,
    vo_budget,
)
from repro.core.optimize import minimize_time
from repro.core.search import find_alternatives
from repro.grid import Cluster, ComputeNode, Metascheduler, VOEnvironment
from repro.sim import JobGenerator, SlotGenerator


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_generated_pipeline_passes_audit(seed):
    """Any (slots, batch) draw, both algorithms, both objectives: the
    scheduler's output must survive the independent auditor."""
    slot_generator = SlotGenerator(seed=seed)
    job_generator = JobGenerator(rng=slot_generator.rng)
    slots = slot_generator.generate()
    batch = job_generator.generate()
    for algorithm in SlotSearchAlgorithm:
        for objective in Criterion:
            config = SchedulerConfig(
                algorithm=algorithm,
                objective=objective,
                infeasible_policy=InfeasiblePolicy.EARLIEST,
                max_alternatives_per_job=6,
            )
            outcome = BatchScheduler(config).schedule(slots, batch)
            violations = audit_outcome(outcome, slots, algorithm=algorithm)
            assert violations == [], (
                f"{algorithm} / {objective}: {[v.message for v in violations]}"
            )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_fig4_pipeline_invariants(seed):
    """The exact Fig. 4 pipeline: B* from eq. (3) always admits the
    min-time combination, and the chosen combination respects both the
    budget (with discretization tolerance) and disjointness."""
    slot_generator = SlotGenerator(seed=seed)
    job_generator = JobGenerator(rng=slot_generator.rng)
    slots = slot_generator.generate()
    batch = job_generator.generate()
    search = find_alternatives(slots, batch, SlotSearchAlgorithm.AMP)
    if not search.all_jobs_covered():
        return
    quota = time_quota(search.alternatives)
    try:
        budget = vo_budget(search.alternatives, quota, resolution=800)
    except Exception:
        return  # infeasible quota: iteration legitimately dropped
    combo = minimize_time(search.alternatives, budget, resolution=800)
    tolerance = budget * len(search.alternatives) / 800
    assert combo.total_cost <= budget + tolerance + 1e-9
    violations = audit_windows(
        combo.selection,
        slot_list=slots,
        algorithm=SlotSearchAlgorithm.AMP,
        budget_limit=budget * (1 + len(search.alternatives) / 800),
    )
    assert violations == []


class TestMetaschedulerAuditsClean:
    def test_committed_reservations_match_trace_windows(self):
        nodes = [ComputeNode(f"n{i}", performance=1.0, price=2.0) for i in range(4)]
        environment = VOEnvironment([Cluster("c", nodes)])
        scheduler = BatchScheduler(
            SchedulerConfig(infeasible_policy=InfeasiblePolicy.EARLIEST)
        )
        meta = Metascheduler(environment, scheduler, period=50.0, horizon=500.0)
        generator = JobGenerator(seed=21)
        for index in range(6):
            meta.submit(
                Job(generator.generate_request(), name=f"g{index}"),
                at_time=10.0 * index,
            )
        meta.run(until=1500.0)
        # Every scheduled window's spans exist as reservations.
        for record in meta.trace:
            if record.window is None:
                continue
            for resource, start, end in record.window.occupied_spans():
                node = environment.node_for(resource.uid)
                spans = [
                    (iv.start, iv.end)
                    for iv in node.schedule
                    if iv.label == f"job:{record.job.name}"
                ]
                assert (start, end) in spans
        # And the scheduled windows are mutually disjoint.
        windows = {
            record.job: record.window
            for record in meta.trace
            if record.window is not None
        }
        assert audit_windows(windows) == []


class TestCrossObjectiveConsistency:
    def test_cost_min_never_beats_time_min_on_time(self):
        """On the same alternatives, the min-time combination's total
        time is a lower bound for any feasible combination — including
        the min-cost one."""
        slot_generator = SlotGenerator(seed=99)
        job_generator = JobGenerator(rng=slot_generator.rng)
        checked = 0
        for _ in range(30):
            slots = slot_generator.generate()
            batch = job_generator.generate()
            search = find_alternatives(slots, batch, SlotSearchAlgorithm.AMP)
            if not search.all_jobs_covered():
                continue
            quota = time_quota(search.alternatives)
            try:
                budget = vo_budget(search.alternatives, quota, resolution=800)
            except Exception:
                continue
            from repro.core.optimize import minimize_cost

            time_combo = minimize_time(search.alternatives, budget, resolution=800)
            cost_combo = minimize_cost(search.alternatives, quota, resolution=800)
            # min-cost runs under the tighter quota; min-time under the
            # budget attaining that quota — its time can only be lower
            # or equal up to discretization slack.
            slack = quota * len(search.alternatives) / 800
            assert time_combo.total_time <= cost_combo.total_time + slack + 1e-9
            checked += 1
            if checked >= 5:
                return
        pytest.skip("no feasible iterations drawn (generator drift?)")
