"""Unit tests for repro.core.job (ResourceRequest, Job, Batch)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Batch, InvalidRequestError, Job, ResourceRequest, Slot

from tests.conftest import make_resource


class TestResourceRequestValidation:
    def test_rejects_zero_nodes(self):
        with pytest.raises(InvalidRequestError):
            ResourceRequest(node_count=0, volume=10.0)

    def test_rejects_zero_volume(self):
        with pytest.raises(InvalidRequestError):
            ResourceRequest(node_count=1, volume=0.0)

    def test_rejects_nonpositive_performance(self):
        with pytest.raises(InvalidRequestError):
            ResourceRequest(node_count=1, volume=10.0, min_performance=0.0)

    def test_rejects_nonpositive_price(self):
        with pytest.raises(InvalidRequestError):
            ResourceRequest(node_count=1, volume=10.0, max_price=0.0)

    def test_defaults(self):
        request = ResourceRequest(node_count=2, volume=50.0)
        assert request.min_performance == 1.0
        assert request.max_price == math.inf


class TestBudget:
    def test_budget_is_ctn(self):
        request = ResourceRequest(node_count=3, volume=30.0, max_price=10.0)
        # S = C·t·N (paper Section 3).
        assert request.budget == pytest.approx(900.0)

    def test_budget_infinite_without_price_cap(self):
        request = ResourceRequest(node_count=3, volume=30.0)
        assert math.isinf(request.budget)

    def test_scaled_budget(self):
        request = ResourceRequest(node_count=2, volume=80.0, max_price=5.0)
        assert request.scaled_budget(0.8) == pytest.approx(0.8 * 800.0)

    def test_scaled_budget_identity_at_one(self):
        request = ResourceRequest(node_count=2, volume=80.0, max_price=5.0)
        assert request.scaled_budget(1.0) == pytest.approx(request.budget)

    @pytest.mark.parametrize("rho", [0.0, -0.5, 1.2])
    def test_scaled_budget_rejects_bad_rho(self, rho):
        request = ResourceRequest(node_count=2, volume=80.0, max_price=5.0)
        with pytest.raises(InvalidRequestError):
            request.scaled_budget(rho)


class TestAdmission:
    def test_runtime_on_resource(self):
        request = ResourceRequest(node_count=1, volume=100.0)
        assert request.runtime_on(make_resource(performance=2.0)) == pytest.approx(50.0)

    def test_admits_performance_boundary(self):
        request = ResourceRequest(node_count=1, volume=10.0, min_performance=2.0)
        assert request.admits_performance(make_resource(performance=2.0))
        assert not request.admits_performance(make_resource(performance=1.9))

    def test_admits_price_boundary(self):
        request = ResourceRequest(node_count=1, volume=10.0, max_price=5.0)
        assert request.admits_price(Slot(make_resource(price=5.0), 0.0, 50.0))
        assert not request.admits_price(Slot(make_resource(price=5.1), 0.0, 50.0))

    def test_fits_length_at_window_start(self):
        request = ResourceRequest(node_count=1, volume=40.0)
        slot = Slot(make_resource(), 0.0, 100.0)
        assert request.fits_length(slot, 60.0)
        assert not request.fits_length(slot, 61.0)

    def test_fits_length_rejects_future_slot(self):
        # A slot that starts after the window start cannot join it: tasks
        # must start synchronously.
        request = ResourceRequest(node_count=1, volume=10.0)
        slot = Slot(make_resource(), 50.0, 100.0)
        assert not request.fits_length(slot, 40.0)

    def test_fits_length_accounts_for_performance(self):
        request = ResourceRequest(node_count=1, volume=100.0)
        fast = Slot(make_resource(performance=2.0), 0.0, 60.0)
        # Runtime on the fast node is 50 <= 60.
        assert request.fits_length(fast, 0.0)
        slow = Slot(make_resource(performance=1.0), 0.0, 60.0)
        assert not request.fits_length(slow, 0.0)

    @given(st.floats(min_value=0.1, max_value=10.0))
    def test_runtime_inverse_performance_property(self, performance):
        request = ResourceRequest(node_count=1, volume=120.0)
        runtime = request.runtime_on(make_resource(performance=performance))
        assert runtime * performance == pytest.approx(120.0)


class TestJob:
    def test_auto_name_and_uid(self):
        job = Job(ResourceRequest(node_count=1, volume=10.0))
        assert job.name.startswith("job")
        assert job.uid > 0

    def test_uids_unique(self):
        request = ResourceRequest(node_count=1, volume=10.0)
        assert Job(request).uid != Job(request).uid

    def test_equality_by_uid(self):
        request = ResourceRequest(node_count=1, volume=10.0)
        job = Job(request, name="a")
        assert job == job
        assert job != Job(request, name="a")

    def test_hashable(self):
        job = Job(ResourceRequest(node_count=1, volume=10.0))
        assert {job: 1}[job] == 1


class TestBatch:
    def _job(self, priority: int, name: str = "") -> Job:
        return Job(ResourceRequest(node_count=1, volume=10.0), name=name, priority=priority)

    def test_orders_by_priority(self):
        low = self._job(5, "low")
        high = self._job(0, "high")
        batch = Batch([low, high])
        assert [job.name for job in batch] == ["high", "low"]

    def test_stable_within_equal_priority(self):
        first = self._job(1, "first")
        second = self._job(1, "second")
        batch = Batch([first, second])
        assert [job.name for job in batch] == ["first", "second"]

    def test_rejects_duplicate_jobs(self):
        job = self._job(0)
        with pytest.raises(InvalidRequestError):
            Batch([job, job])

    def test_len_iter_getitem_contains(self):
        jobs = [self._job(i) for i in range(3)]
        batch = Batch(jobs)
        assert len(batch) == 3
        assert batch[1] == jobs[1]
        assert jobs[2] in batch

    def test_without(self):
        jobs = [self._job(i, f"j{i}") for i in range(3)]
        batch = Batch(jobs)
        smaller = batch.without([jobs[1]])
        assert [job.name for job in smaller] == ["j0", "j2"]
        assert len(batch) == 3  # original untouched

    def test_total_volume(self):
        jobs = [
            Job(ResourceRequest(node_count=2, volume=50.0)),
            Job(ResourceRequest(node_count=3, volume=10.0)),
        ]
        assert Batch(jobs).total_volume() == pytest.approx(130.0)

    def test_empty_batch(self):
        batch = Batch()
        assert len(batch) == 0
        assert batch.total_volume() == 0.0
