"""Unit and property tests for repro.core.slot (Slot and SlotList)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Resource, Slot, SlotList, SlotListError

from tests.conftest import make_resource


class TestSlot:
    def test_length(self):
        slot = Slot(make_resource(), 10.0, 35.0)
        assert slot.length == pytest.approx(25.0)

    def test_rejects_end_before_start(self):
        with pytest.raises(SlotListError):
            Slot(make_resource(), 10.0, 5.0)

    def test_zero_length_allowed_as_value(self):
        # Zero-length slots are legal values; SlotList.insert drops them.
        slot = Slot(make_resource(), 5.0, 5.0)
        assert slot.length == 0.0

    def test_price_defaults_to_resource_price(self):
        slot = Slot(make_resource(price=7.5), 0.0, 10.0)
        assert slot.price == 7.5

    def test_price_override(self):
        slot = Slot(make_resource(price=7.5), 0.0, 10.0, price=3.0)
        assert slot.price == 3.0

    def test_price_rejects_negative(self):
        with pytest.raises(SlotListError):
            Slot(make_resource(), 0.0, 10.0, price=-2.0)

    def test_performance_proxies_resource(self):
        slot = Slot(make_resource(performance=2.5), 0.0, 10.0)
        assert slot.performance == 2.5

    def test_runtime_and_cost(self):
        slot = Slot(make_resource(performance=2.0, price=4.0), 0.0, 100.0)
        assert slot.runtime_of(50.0) == pytest.approx(25.0)
        assert slot.cost_of(50.0) == pytest.approx(100.0)

    def test_remaining_from_before_start(self):
        slot = Slot(make_resource(), 10.0, 30.0)
        assert slot.remaining_from(0.0) == pytest.approx(20.0)

    def test_remaining_from_inside(self):
        slot = Slot(make_resource(), 10.0, 30.0)
        assert slot.remaining_from(25.0) == pytest.approx(5.0)

    def test_remaining_from_after_end_is_negative(self):
        slot = Slot(make_resource(), 10.0, 30.0)
        assert slot.remaining_from(40.0) == pytest.approx(-10.0)

    def test_contains_span(self):
        slot = Slot(make_resource(), 10.0, 30.0)
        assert slot.contains_span(10.0, 30.0)
        assert slot.contains_span(15.0, 20.0)
        assert not slot.contains_span(5.0, 20.0)
        assert not slot.contains_span(15.0, 35.0)

    def test_overlap_same_resource(self):
        node = make_resource()
        assert Slot(node, 0.0, 10.0).overlaps(Slot(node, 5.0, 15.0))
        assert not Slot(node, 0.0, 10.0).overlaps(Slot(node, 10.0, 15.0))

    def test_no_overlap_across_resources(self):
        a, b = make_resource("a"), make_resource("b")
        assert not Slot(a, 0.0, 10.0).overlaps(Slot(b, 0.0, 10.0))


class TestSlotListBasics:
    def test_constructor_sorts_by_start(self):
        node = make_resource()
        slots = SlotList([Slot(node, 50.0, 60.0), Slot(node, 0.0, 10.0), Slot(node, 20.0, 30.0)])
        assert [slot.start for slot in slots] == [0.0, 20.0, 50.0]

    def test_insert_keeps_order(self):
        node = make_resource()
        slots = SlotList([Slot(node, 0.0, 10.0), Slot(node, 50.0, 60.0)])
        slots.insert(Slot(node, 20.0, 30.0))
        assert [slot.start for slot in slots] == [0.0, 20.0, 50.0]

    def test_insert_drops_zero_length(self):
        slots = SlotList()
        slots.insert(Slot(make_resource(), 5.0, 5.0))
        assert len(slots) == 0

    def test_contains(self):
        node = make_resource()
        inside = Slot(node, 0.0, 10.0)
        slots = SlotList([inside])
        assert inside in slots
        assert Slot(node, 0.0, 11.0) not in slots

    def test_remove(self):
        node = make_resource()
        a, b = Slot(node, 0.0, 10.0), Slot(node, 20.0, 30.0)
        slots = SlotList([a, b])
        slots.remove(a)
        assert list(slots) == [b]

    def test_remove_missing_raises(self):
        slots = SlotList()
        with pytest.raises(SlotListError):
            slots.remove(Slot(make_resource(), 0.0, 10.0))

    def test_copy_is_independent(self):
        node = make_resource()
        original = SlotList([Slot(node, 0.0, 10.0)])
        clone = original.copy()
        clone.insert(Slot(node, 20.0, 30.0))
        assert len(original) == 1
        assert len(clone) == 2

    def test_equal_start_slots_ordered_deterministically(self):
        a = make_resource("a")
        b = make_resource("b")
        one = SlotList([Slot(a, 0.0, 10.0), Slot(b, 0.0, 20.0)])
        two = SlotList([Slot(b, 0.0, 20.0), Slot(a, 0.0, 10.0)])
        assert list(one) == list(two)

    def test_resources_first_seen_order(self):
        a, b = make_resource("a"), make_resource("b")
        slots = SlotList([Slot(a, 0.0, 10.0), Slot(b, 5.0, 15.0), Slot(a, 20.0, 30.0)])
        assert slots.resources() == [a, b]

    def test_total_vacant_time(self):
        node = make_resource()
        slots = SlotList([Slot(node, 0.0, 10.0), Slot(node, 20.0, 50.0)])
        assert slots.total_vacant_time() == pytest.approx(40.0)

    def test_horizon(self):
        node = make_resource()
        slots = SlotList([Slot(node, 5.0, 100.0), Slot(node, 200.0, 210.0)])
        assert slots.horizon() == (5.0, 210.0)

    def test_horizon_empty_raises(self):
        with pytest.raises(SlotListError):
            SlotList().horizon()

    def test_slots_on(self):
        a, b = make_resource("a"), make_resource("b")
        slots = SlotList([Slot(a, 0.0, 10.0), Slot(b, 0.0, 10.0), Slot(a, 20.0, 30.0)])
        assert [slot.start for slot in slots.slots_on(a)] == [0.0, 20.0]


class TestSubtraction:
    """The paper's Fig. 1 (b) slot subtraction."""

    def test_middle_cut_produces_two_remainders(self):
        node = make_resource()
        slots = SlotList([Slot(node, 0.0, 100.0)])
        removed = slots.subtract(node, 30.0, 60.0)
        assert removed == Slot(node, 0.0, 100.0)
        assert [(slot.start, slot.end) for slot in slots] == [(0.0, 30.0), (60.0, 100.0)]

    def test_prefix_cut_leaves_suffix(self):
        node = make_resource()
        slots = SlotList([Slot(node, 0.0, 100.0)])
        slots.subtract(node, 0.0, 40.0)
        assert [(slot.start, slot.end) for slot in slots] == [(40.0, 100.0)]

    def test_suffix_cut_leaves_prefix(self):
        node = make_resource()
        slots = SlotList([Slot(node, 0.0, 100.0)])
        slots.subtract(node, 60.0, 100.0)
        assert [(slot.start, slot.end) for slot in slots] == [(0.0, 60.0)]

    def test_exact_cut_removes_slot(self):
        node = make_resource()
        slots = SlotList([Slot(node, 0.0, 100.0)])
        slots.subtract(node, 0.0, 100.0)
        assert len(slots) == 0

    def test_remainders_keep_price_override(self):
        node = make_resource(price=5.0)
        slots = SlotList([Slot(node, 0.0, 100.0, price=2.0)])
        slots.subtract(node, 30.0, 60.0)
        assert all(slot.price == 2.0 for slot in slots)

    def test_subtract_picks_correct_resource(self):
        a, b = make_resource("a"), make_resource("b")
        slots = SlotList([Slot(a, 0.0, 100.0), Slot(b, 0.0, 100.0)])
        slots.subtract(b, 0.0, 50.0)
        spans = {(slot.resource.name, slot.start, slot.end) for slot in slots}
        assert spans == {("a", 0.0, 100.0), ("b", 50.0, 100.0)}

    def test_subtract_uncontained_span_raises(self):
        node = make_resource()
        slots = SlotList([Slot(node, 0.0, 100.0)])
        with pytest.raises(SlotListError):
            slots.subtract(node, 90.0, 120.0)

    def test_subtract_spanning_two_slots_raises(self):
        # The span is vacant overall but crosses a busy gap: no single
        # slot contains it, exactly as the paper's subtraction requires.
        node = make_resource()
        slots = SlotList([Slot(node, 0.0, 50.0), Slot(node, 60.0, 100.0)])
        with pytest.raises(SlotListError):
            slots.subtract(node, 40.0, 70.0)

    def test_subtract_negative_span_raises(self):
        node = make_resource()
        slots = SlotList([Slot(node, 0.0, 100.0)])
        with pytest.raises(SlotListError):
            slots.subtract(node, 60.0, 30.0)


# --------------------------------------------------------------------- #
# Property-based invariants                                             #
# --------------------------------------------------------------------- #

_spans = st.tuples(
    st.floats(min_value=0.0, max_value=1000.0),
    st.floats(min_value=1.0, max_value=300.0),
).map(lambda pair: (pair[0], pair[0] + pair[1]))


@settings(max_examples=60, deadline=None)
@given(st.lists(_spans, min_size=1, max_size=25))
def test_slotlist_always_sorted(spans):
    node = Resource("prop")
    slots = SlotList()
    for start, end in spans:
        slots.insert(Slot(node, start, end, price=1.0))
    assert slots.is_sorted()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=0.9),
            st.floats(min_value=0.01, max_value=1.0),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_subtraction_preserves_invariants(cuts):
    """Arbitrary nested subtractions keep the list sorted, disjoint, and
    conserve total vacant time."""
    node = Resource("prop")
    slots = SlotList([Slot(node, 0.0, 1000.0)])
    removed_total = 0.0
    for fraction, width in cuts:
        # Find the widest current slot and cut a sub-span of it.
        target = max(slots, key=lambda slot: slot.length, default=None)
        if target is None or target.length < 2.0:
            break
        start = target.start + fraction * (target.length - 1.0)
        end = min(start + width * (target.end - start), target.end)
        if end <= start:
            continue
        slots.subtract(node, start, end)
        removed_total += end - start
        assert slots.is_sorted()
        assert slots.check_no_overlap()
    assert slots.total_vacant_time() == pytest.approx(1000.0 - removed_total, rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.lists(_spans, min_size=1, max_size=15), st.integers(min_value=0, max_value=14))
def test_remove_then_insert_roundtrip(spans, index):
    node = Resource("prop")
    slots = SlotList(Slot(node, start, end) for start, end in spans)
    before = list(slots)
    victim = before[index % len(before)]
    slots.remove(victim)
    slots.insert(victim)
    assert list(slots) == before
