"""Model-based stress test: SlotList vs a naive reference container.

Hypothesis drives random sequences of insert / remove / subtract
operations against both the production :class:`SlotList` and a dumb
reference model (an unsorted list with linear scans).  After every
operation the two must agree on the full slot multiset and on the core
queries — the strongest guard against ordering/bisection bugs in the
sorted-container code.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Resource, Slot, SlotList, SlotListError


class ReferenceModel:
    """Naive slot container with the same semantics as SlotList."""

    def __init__(self) -> None:
        self.slots: list[Slot] = []

    def insert(self, slot: Slot) -> None:
        if slot.length > 0:
            self.slots.append(slot)

    def remove(self, slot: Slot) -> bool:
        if slot in self.slots:
            self.slots.remove(slot)
            return True
        return False

    def subtract(self, resource: Resource, start: float, end: float) -> bool:
        for index, candidate in enumerate(self.slots):
            if candidate.resource == resource and candidate.contains_span(start, end):
                del self.slots[index]
                self.insert(Slot(candidate.resource, candidate.start, start, candidate.price))
                self.insert(Slot(candidate.resource, end, candidate.end, candidate.price))
                return True
        return False

    def canonical(self) -> list[tuple[float, float, int, float]]:
        return sorted(
            (slot.start, slot.end, slot.resource.uid, slot.price) for slot in self.slots
        )


_operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove", "subtract"]),
        st.integers(min_value=0, max_value=3),      # resource index
        st.floats(min_value=0.0, max_value=0.9),    # position fraction
        st.floats(min_value=0.05, max_value=1.0),   # width fraction
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(operations=_operations)
def test_slotlist_agrees_with_reference_model(operations):
    resources = [Resource(f"m{i}", performance=1.0, price=float(i + 1)) for i in range(4)]
    production = SlotList()
    model = ReferenceModel()
    for action, resource_index, position, width in operations:
        resource = resources[resource_index]
        if action == "insert":
            # Insert a fresh span on a clear region: use the current
            # maximum end on this resource as the base to avoid overlap.
            existing = [s for s in model.slots if s.resource == resource]
            base = max((s.end for s in existing), default=0.0) + 1.0
            slot = Slot(resource, base, base + 10.0 + 100.0 * width)
            production.insert(slot)
            model.insert(slot)
        elif action == "remove":
            targets = [s for s in model.slots if s.resource == resource]
            if not targets:
                continue
            victim = targets[int(position * len(targets)) % len(targets)]
            assert model.remove(victim)
            production.remove(victim)
        else:  # subtract
            targets = [
                s for s in model.slots if s.resource == resource and s.length > 2.0
            ]
            if not targets:
                continue
            host = targets[int(position * len(targets)) % len(targets)]
            cut_start = host.start + position * (host.length - 1.0)
            cut_end = min(host.end, cut_start + width * (host.end - cut_start))
            if cut_end <= cut_start:
                continue
            assert model.subtract(resource, cut_start, cut_end)
            production.subtract(resource, cut_start, cut_end)
        # After every operation, full agreement.
        assert (
            sorted(
                (s.start, s.end, s.resource.uid, s.price) for s in production
            )
            == model.canonical()
        )
        assert production.is_sorted()
        assert production.check_no_overlap()
        assert len(production) == len(model.slots)
        assert production.total_vacant_time() == pytest.approx(
            sum(s.length for s in model.slots)
        )


@settings(max_examples=30, deadline=None)
@given(operations=_operations)
def test_failed_operations_raise_identically(operations):
    """Removing/subtracting things that are not there must raise, and
    leave the container untouched."""
    resource = Resource("lonely", performance=1.0, price=1.0)
    production = SlotList([Slot(resource, 0.0, 100.0)])
    before = list(production)
    stranger = Resource("stranger", performance=1.0, price=1.0)
    with pytest.raises(SlotListError):
        production.remove(Slot(stranger, 0.0, 100.0))
    with pytest.raises(SlotListError):
        production.subtract(stranger, 10.0, 20.0)
    with pytest.raises(SlotListError):
        production.subtract(resource, 90.0, 110.0)
    assert list(production) == before
