"""Chaos engine tests (repro.chaos): fault plans, the fs shim, supervised
worker recovery, and the crash-point sweeps over both checkpoint formats.

The heavyweight end-to-end guarantees live in the harness campaigns —
the tests here both unit-test the primitives and run the campaigns at a
fixed seed, so CI replays exactly the sweep a failing report names.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.chaos import (
    ChaosFilesystem,
    CrashOnceSpanTask,
    FaultPlan,
    FaultPoint,
    SimulatedCrash,
    WorkerSupervisor,
    derive_fault_seed,
    kill_shard_worker,
    run_campaigns,
    sweep_crash_points,
    sweep_experiment_resume,
)
from repro.chaos.fs import flip_one_bit
from repro.core import (
    InvalidRequestError,
    ShardedSearchExecutor,
    SlotIndex,
    SchedulingError,
)
from repro.core.errors import (
    JournalClosedError,
    PersistenceError,
    WorkerLostError,
)
from repro.core.journal import JournalWriter, read_journal
from repro.sim.experiment import ExperimentConfig, ParallelRunner
from tests.conftest import make_random_request, make_random_slot_list

import random

CHAOS_SEED = 20110368

ZERO_BACKOFF = WorkerSupervisor(max_restarts=2, backoff_base=0.0, backoff_cap=0.0)


class TestFaultPrimitives:
    def test_derived_seed_is_deterministic_and_label_sensitive(self):
        assert derive_fault_seed(7, "io") == derive_fault_seed(7, "io")
        assert derive_fault_seed(7, "io") != derive_fault_seed(8, "io")
        assert derive_fault_seed(7, "io") != derive_fault_seed(7, "pool")

    def test_point_fires_on_nth_matching_operation_only_once(self):
        plan = FaultPlan((FaultPoint("write", "torn", index=3, path="journal"),))
        assert plan.observe("write", "journal.jsonl") is None
        assert plan.observe("fsync", "journal.jsonl") is None  # other op
        assert plan.observe("write", "snapshot.json") is None  # other file
        assert plan.observe("write", "journal.jsonl") is None
        fired = plan.observe("write", "journal.jsonl")
        assert fired is not None and fired.kind == "torn"
        assert plan.observe("write", "journal.jsonl") is None  # consumed
        assert [f.point.describe() for f in plan.injected] == [
            "write#3(torn)@journal"
        ]
        assert plan.pending == ()

    def test_point_validation(self):
        with pytest.raises(InvalidRequestError, match="unknown fault op"):
            FaultPoint("read", "crash")
        with pytest.raises(InvalidRequestError, match="not valid for op"):
            FaultPoint("fsync", "torn")
        with pytest.raises(InvalidRequestError, match="1-based"):
            FaultPoint("write", "crash", index=0)

    def test_simulated_crash_is_not_an_exception(self):
        # It must unwind past `except Exception` exactly like SIGKILL.
        assert not issubclass(SimulatedCrash, Exception)

    def test_supervisor_ladder_matches_retry_policy_shape(self):
        supervisor = WorkerSupervisor(
            max_restarts=5, backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.3
        )
        assert supervisor.delay(1) == pytest.approx(0.1)
        assert supervisor.delay(2) == pytest.approx(0.2)
        assert supervisor.delay(3) == pytest.approx(0.3)  # capped
        assert supervisor.delay(4) == pytest.approx(0.3)
        with pytest.raises(InvalidRequestError, match="backoff_cap"):
            WorkerSupervisor(backoff_base=0.5, backoff_cap=0.1)


class TestChaosFilesystem:
    def test_flip_one_bit_keeps_payload_json_shaped(self):
        line = '{"crc":123,"data":{},"kind":"x","seq":4}'
        flipped = flip_one_bit(line)
        assert flipped != line
        assert flipped[:-3] == line[:-3]  # only the tail digit moved
        assert flipped[-2].isdigit()

    def test_enospc_poisons_journal_fail_closed(self, tmp_path):
        # Satellite regression: after any append OSError the handle must
        # refuse all further appends (fsyncgate) — write #1 is the
        # header, so index=2 starves the first real append.
        path = tmp_path / "journal.jsonl"
        plan = FaultPlan((FaultPoint("write", "enospc", index=2, path=path.name),))
        writer = JournalWriter(path, fsync=False, fs=ChaosFilesystem(plan))
        with pytest.raises(PersistenceError, match="No space left"):
            writer.append("cmd", {"n": 1})
        assert writer.poisoned
        with pytest.raises(JournalClosedError):
            writer.append("cmd", {"n": 2})
        assert plan.injected and plan.injected[0].point.kind == "enospc"

    def test_torn_append_is_skipped_on_reopen(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        plan = FaultPlan((FaultPoint("write", "torn", index=3, path=path.name),))
        writer = JournalWriter(path, fsync=False, fs=ChaosFilesystem(plan))
        writer.append("cmd", {"n": 1})
        with pytest.raises(SimulatedCrash):
            writer.append("cmd", {"n": 2})
        with pytest.warns(UserWarning, match="torn"):
            records = read_journal(path)
        # Header (seq 0) + first command survived; the torn record is
        # the crash artefact and must not surface.
        assert [record.seq for record in records] == [0, 1]


class TestCrashPointSweeps:
    def test_durable_metascheduler_sweep(self, tmp_path):
        result = sweep_crash_points(tmp_path, seed=CHAOS_SEED)
        assert result.failures == []
        assert result.runs == 18  # 9 journal appends x (crash, torn)
        assert result.injected == 18

    def test_experiment_resume_sweep(self, tmp_path):
        result = sweep_experiment_resume(tmp_path, seed=CHAOS_SEED, iterations=4)
        assert result.failures == []
        # 4 serial records x 2 modes, plus one sampled parallel point
        # per mode.
        assert result.runs == 10
        assert result.injected == 10

    def test_io_faults_campaign(self, tmp_path):
        # ENOSPC / failed fsync / failed snapshot rename / silent
        # bit-flip on the grid format, ENOSPC on the sim format.
        report = run_campaigns(tmp_path, seed=CHAOS_SEED, names=["io"])
        (campaign,) = report.campaigns
        assert campaign.failures == []
        assert campaign.runs == 5
        assert campaign.injected == 5

    def test_same_seed_reproduces_the_report(self, tmp_path):
        first = run_campaigns(tmp_path / "a", seed=CHAOS_SEED, names=["io"])
        second = run_campaigns(tmp_path / "b", seed=CHAOS_SEED, names=["io"])
        assert first.summary() == second.summary()

    def test_unknown_campaign_rejected(self, tmp_path):
        with pytest.raises(InvalidRequestError, match="unknown chaos campaign"):
            run_campaigns(tmp_path, names=["sweeep"])

    def test_campaigns_run_with_telemetry_enabled(self, tmp_path):
        # Regression: the guarded chaos counters/decisions only execute
        # when telemetry is on, so a label-name collision there is
        # invisible to every other test.
        from repro import obs

        obs.disable()
        telemetry = obs.configure(enabled=True)
        try:
            report = run_campaigns(tmp_path, seed=CHAOS_SEED, names=["io"])
            assert report.ok
            campaigns = telemetry.registry.get(
                "chaos.campaigns", campaign="io", ok="true"
            )
            assert campaigns is not None and campaigns.value == 1
            ops = {record["op"] for record in telemetry.decisions.records}
            assert {"chaos.fault", "chaos.campaign"} <= ops
        finally:
            obs.disable()


@dataclass(frozen=True)
class _KillAlwaysTask:
    """Span task whose worker always SIGKILLs itself — never recovers."""

    def __call__(self, config, start, stop):
        os.kill(os.getpid(), signal.SIGKILL)


class TestPoolRecovery:
    def test_killed_pool_worker_recovers_byte_identically(self, tmp_path):
        # Satellite regression: an actually-killed worker breaks the
        # whole concurrent.futures pool; the supervised retry on a fresh
        # pool must converge on the undisturbed result.
        config = ExperimentConfig(iterations=6, seed=CHAOS_SEED)
        reference = ParallelRunner(config, workers=2).run()
        sentinel = tmp_path / "killed.sentinel"
        seed = derive_fault_seed(CHAOS_SEED, "test-pool")
        victim = random.Random(seed).randrange(config.iterations)
        runner = ParallelRunner(
            config,
            workers=2,
            supervisor=ZERO_BACKOFF,
            span_task=CrashOnceSpanTask(str(sentinel), victim),
        )
        assert runner.run() == reference
        assert sentinel.exists()

    def test_recurring_pool_breakage_raises_worker_lost(self):
        config = ExperimentConfig(iterations=4, seed=CHAOS_SEED)
        runner = ParallelRunner(
            config,
            workers=2,
            supervisor=WorkerSupervisor(
                max_restarts=0, backoff_base=0.0, backoff_cap=0.0
            ),
            span_task=_KillAlwaysTask(),
        )
        with pytest.raises(WorkerLostError, match="pool broke"):
            runner.run()

    def test_worker_lost_maps_to_cli_exit_2(self):
        # main() converts SchedulingError to exit code 2; WorkerLostError
        # must ride that path.
        assert issubclass(WorkerLostError, SchedulingError)


def _fingerprint(window):
    if window is None:
        return None
    return (
        window.start,
        tuple(
            (a.resource.uid, a.start, a.end, a.source.price)
            for a in window.allocations
        ),
    )


def _slot_rows(slots):
    return sorted((s.resource.uid, s.start, s.end, s.price) for s in slots)


class TestShardRecovery:
    def test_killed_shard_worker_replays_identically(self):
        # Satellite regression: SIGKILL one shard worker mid-sequence;
        # the respawned worker replays its mutation log and the search
        # results stay identical to the in-process oracle.
        slots = make_random_slot_list(3, count=24)
        seed = derive_fault_seed(CHAOS_SEED, "test-shard")
        rng = random.Random(seed)
        index = SlotIndex(slots)
        with ShardedSearchExecutor(
            slots, 3, processes=True, supervisor=ZERO_BACKOFF
        ) as executor:
            assert executor.uses_processes
            for step in range(3):
                if step == 1:
                    kill_shard_worker(executor, rng.randrange(3))
                request = make_random_request(rng)
                reference = index.find_alp_window(request)
                found = executor.find_alp_window(request)
                assert _fingerprint(found) == _fingerprint(reference)
                if reference is not None:
                    index.commit(reference)
                    executor.commit(found)
            assert _slot_rows(executor.slot_list()) == _slot_rows(index.slot_list())

    def test_exhausted_restart_budget_names_the_shard(self):
        slots = make_random_slot_list(5, count=12)
        supervisor = WorkerSupervisor(max_restarts=0, backoff_base=0.0, backoff_cap=0.0)
        executor = ShardedSearchExecutor(slots, 2, processes=True, supervisor=supervisor)
        try:
            kill_shard_worker(executor, 1)
            with pytest.raises(WorkerLostError, match="shard 1") as caught:
                executor.find_alp_window(make_random_request(random.Random(3)))
            assert caught.value.shard == 1
        finally:
            executor.close()

    def test_kill_requires_process_mode(self):
        slots = make_random_slot_list(7, count=8)
        with ShardedSearchExecutor(slots, 2) as executor:
            with pytest.raises(InvalidRequestError, match="process-mode"):
                kill_shard_worker(executor, 0)

    def test_close_survives_already_dead_worker(self):
        slots = make_random_slot_list(9, count=12)
        executor = ShardedSearchExecutor(
            slots, 2, processes=True, supervisor=ZERO_BACKOFF
        )
        kill_shard_worker(executor, 0)
        executor.close()  # dead pipe is recorded, not raised

    def test_wedged_worker_is_terminated_with_typed_error(self):
        # Satellite regression: a worker that ignores its stop request
        # must be terminate()-d after the bounded join, and close() must
        # name the wedged shard.
        slots = make_random_slot_list(11, count=12)
        executor = ShardedSearchExecutor(
            slots, 2, processes=True, supervisor=ZERO_BACKOFF
        )
        kill_shard_worker(executor, 0)
        sleeper = multiprocessing.Process(target=time.sleep, args=(60.0,), daemon=True)
        sleeper.start()
        stale, _ = multiprocessing.Pipe()
        stale.close()
        executor._workers[0] = sleeper
        executor._connections[0] = stale
        with pytest.raises(WorkerLostError, match="did not stop") as caught:
            executor.close(timeout=0.2)
        assert caught.value.shard == 0
        assert not sleeper.is_alive()
