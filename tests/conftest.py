"""Shared fixtures and builders for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import Resource, Slot, SlotList


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests that need randomness."""
    return random.Random(0xC0FFEE)


def make_resource(
    name: str = "node",
    performance: float = 1.0,
    price: float = 1.0,
) -> Resource:
    """A fresh resource with a unique uid."""
    return Resource(name, performance=performance, price=price)


def make_uniform_slots(
    count: int,
    *,
    start: float = 0.0,
    length: float = 100.0,
    performance: float = 1.0,
    price: float = 1.0,
) -> SlotList:
    """``count`` identical slots, each on its own resource."""
    return SlotList(
        Slot(
            make_resource(f"node{i}", performance=performance, price=price),
            start,
            start + length,
        )
        for i in range(count)
    )
