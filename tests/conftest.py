"""Shared fixtures and builders for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import Batch, Job, Resource, ResourceRequest, Slot, SlotList


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests that need randomness."""
    return random.Random(0xC0FFEE)


def make_resource(
    name: str = "node",
    performance: float = 1.0,
    price: float = 1.0,
) -> Resource:
    """A fresh resource with a unique uid."""
    return Resource(name, performance=performance, price=price)


def make_uniform_slots(
    count: int,
    *,
    start: float = 0.0,
    length: float = 100.0,
    performance: float = 1.0,
    price: float = 1.0,
) -> SlotList:
    """``count`` identical slots, each on its own resource."""
    return SlotList(
        Slot(
            make_resource(f"node{i}", performance=performance, price=price),
            start,
            start + length,
        )
        for i in range(count)
    )


def make_random_slot_list(seed: int, count: int = 35) -> SlotList:
    """A seeded random environment: staggered starts, mixed nodes.

    The shared instance generator of the oracle, differential and
    property suites — one slot per resource, performance in [1, 3],
    price in [1, 6], occasional shared start times so the scans' expiry
    logic is exercised.
    """
    rng = random.Random(seed)
    slots = []
    start = 0.0
    for i in range(count):
        if rng.random() > 0.4:
            start += rng.uniform(0.0, 10.0)
        node = Resource(
            f"n{i}", performance=rng.uniform(1.0, 3.0), price=rng.uniform(1.0, 6.0)
        )
        slots.append(Slot(node, start, start + rng.uniform(50.0, 300.0)))
    return SlotList(slots)


def make_random_request(rng: random.Random) -> ResourceRequest:
    """One random request in the same ranges the oracle suite draws from."""
    return ResourceRequest(
        node_count=rng.randint(1, 5),
        volume=rng.uniform(10.0, 200.0),
        min_performance=rng.uniform(1.0, 2.0),
        max_price=rng.uniform(1.0, 8.0),
    )


def make_random_batch(seed: int, job_count: int | None = None) -> Batch:
    """A seeded batch of random jobs (for multi-pass search instances)."""
    rng = random.Random(seed ^ 0x5EED)
    if job_count is None:
        job_count = rng.randint(1, 5)
    return Batch(
        [Job(make_random_request(rng), name=f"j{i}") for i in range(job_count)]
    )
