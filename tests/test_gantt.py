"""Tests for the ASCII Gantt renderer."""

from __future__ import annotations

import pytest

from repro.core import InvalidRequestError, ResourceRequest, Slot, SlotList, TaskAllocation, Window
from repro.sim.gantt import GanttChart

from tests.conftest import make_resource


def _window(node, start: float, volume: float) -> Window:
    slot = Slot(node, start, start + volume * 2)
    request = ResourceRequest(node_count=1, volume=volume)
    return Window(request, [TaskAllocation(slot, start, start + volume)])


class TestGanttChart:
    def test_validation(self):
        with pytest.raises(InvalidRequestError):
            GanttChart((100.0, 100.0))
        with pytest.raises(InvalidRequestError):
            GanttChart((0.0, 100.0), width=5)

    def test_empty_chart(self):
        text = GanttChart((0.0, 100.0)).render(title="empty")
        assert "empty" in text
        assert "(no resources painted)" in text

    def test_slots_painted_as_dots(self):
        node = make_resource("cpu1", price=5.0)
        chart = GanttChart((0.0, 100.0), width=20)
        chart.paint_slots(SlotList([Slot(node, 0.0, 50.0)]))
        text = chart.render()
        row = next(line for line in text.splitlines() if "cpu1" in line)
        assert row.count(".") == 10  # half the horizon

    def test_windows_painted_with_glyphs_and_legend(self):
        node = make_resource("cpu1")
        chart = GanttChart((0.0, 100.0), width=20)
        chart.paint_windows([("jobA", _window(node, 0.0, 50.0))])
        text = chart.render()
        assert "1 = jobA" in text
        assert "1" in text.splitlines()[0] or "1" in text

    def test_window_overrides_vacant_glyph(self):
        node = make_resource("cpu1")
        slots = SlotList([Slot(node, 0.0, 100.0)])
        chart = GanttChart((0.0, 100.0), width=20)
        chart.paint_slots(slots)
        chart.paint_windows([("jobA", _window(node, 0.0, 100.0))])
        row = next(line for line in chart.render().splitlines() if "cpu1" in line)
        assert "." not in row.split("|")[1]

    def test_rows_sorted_by_resource_name(self):
        chart = GanttChart((0.0, 100.0), width=20)
        b = make_resource("b-node")
        a = make_resource("a-node")
        chart.paint_slots(SlotList([Slot(b, 0.0, 10.0), Slot(a, 0.0, 10.0)]))
        lines = [line for line in chart.render().splitlines() if "-node" in line]
        assert lines[0].startswith("a-node")

    def test_axis_labels(self):
        chart = GanttChart((50.0, 650.0), width=20)
        chart.paint_slots(SlotList([Slot(make_resource("x"), 50.0, 100.0)]))
        text = chart.render()
        assert "50" in text and "650" in text

    def test_out_of_horizon_spans_clipped(self):
        node = make_resource("cpu1")
        chart = GanttChart((0.0, 100.0), width=20)
        chart.paint_slots(SlotList([Slot(node, 90.0, 500.0)]))
        row = next(line for line in chart.render().splitlines() if "cpu1" in line)
        cells = row.split("|")[1]
        assert len(cells) == 20
        assert cells.rstrip(".").count(".") == 0  # dots only at the tail
