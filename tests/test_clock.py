"""Tests for the injectable wall clock (``repro.obs.clock``).

The clock shim is the sole RPR001 allowlist entry, so its contract —
swap, restore, freeze, advance — must hold exactly: everything else in
the library reads time through :func:`repro.obs.clock.now`.
"""

from __future__ import annotations

import time

import pytest

from repro.obs import clock
from repro.obs.export import trace_records
from repro.obs.telemetry import Telemetry


@pytest.fixture(autouse=True)
def restore_clock():
    yield
    clock.reset_clock()


class TestClockSwap:
    def test_default_tracks_system_time(self):
        before = time.time()
        stamp = clock.now()
        after = time.time()
        assert before <= stamp <= after

    def test_set_clock_returns_previous(self):
        fake = lambda: 42.0  # noqa: E731
        previous = clock.set_clock(fake)
        assert clock.now() == 42.0
        restored = clock.set_clock(previous)
        assert restored is fake

    def test_reset_clock_restores_system_clock(self):
        clock.set_clock(lambda: -1.0)
        clock.reset_clock()
        assert clock.now() == pytest.approx(time.time(), abs=5.0)


class TestFreeze:
    def test_freeze_pins_now(self):
        with clock.freeze(at=1000.0):
            assert clock.now() == 1000.0
            assert clock.now() == 1000.0

    def test_advance_steps_time_explicitly(self):
        with clock.freeze(at=1000.0) as advance:
            advance(2.5)
            assert clock.now() == 1002.5
            advance(0.5)
            assert clock.now() == 1003.0

    def test_freeze_restores_previous_clock_on_exit(self):
        clock.set_clock(lambda: 7.0)
        with clock.freeze(at=0.0):
            assert clock.now() == 0.0
        assert clock.now() == 7.0

    def test_freeze_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with clock.freeze(at=5.0):
                raise RuntimeError("boom")
        assert clock.now() != 5.0

    def test_nested_freezes(self):
        with clock.freeze(at=10.0):
            with clock.freeze(at=20.0) as advance:
                advance(1.0)
                assert clock.now() == 21.0
            assert clock.now() == 10.0


class TestTelemetryUsesClock:
    def test_events_are_stamped_with_frozen_time(self):
        telemetry = Telemetry(enabled=True)
        with clock.freeze(at=1000.0) as advance:
            telemetry.event("tick")
            advance(2.5)
            telemetry.event("tock")
        stamps = [payload["ts"] for payload in telemetry.events.to_list()]
        assert stamps == [1000.0, 1002.5]

    def test_span_start_uses_frozen_time(self):
        telemetry = Telemetry(enabled=True)
        with clock.freeze(at=500.0):
            with telemetry.span("op"):
                pass
        assert telemetry.traces[0].started_at == 500.0

    def test_trace_header_created_at_is_injectable(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.span("op"):
            pass
        with clock.freeze(at=123.0):
            records = trace_records(telemetry)
        header = records[0]
        assert header["kind"] == "meta"
        assert header["created_at"] == 123.0
