"""Tests for the schedule auditor (repro.core.audit)."""

from __future__ import annotations

import pytest

from repro.core import (
    AuditError,
    Batch,
    BatchScheduler,
    Job,
    ResourceRequest,
    SchedulerConfig,
    Slot,
    SlotList,
    SlotSearchAlgorithm,
    TaskAllocation,
    Window,
    audit_outcome,
    audit_windows,
    require_valid,
)

from tests.conftest import make_resource, make_uniform_slots


def _window(node, slot_span, alloc_span, volume) -> Window:
    slot = Slot(node, *slot_span)
    request = ResourceRequest(node_count=1, volume=volume)
    return Window(request, [TaskAllocation(slot, *alloc_span)])


def _job(volume=10.0, max_price=None) -> Job:
    kwargs = {} if max_price is None else {"max_price": max_price}
    return Job(ResourceRequest(1, volume, **kwargs))


class TestContractCheck:
    def test_clean_assignment_passes(self):
        node = make_resource(price=2.0)
        job = _job(volume=10.0, max_price=3.0)
        window = _window(node, (0.0, 100.0), (0.0, 10.0), 10.0)
        windows = {job: window}
        assert audit_windows(windows, algorithm=SlotSearchAlgorithm.ALP) == []

    def test_alp_price_violation_flagged(self):
        node = make_resource(price=9.0)
        job = _job(volume=10.0, max_price=3.0)
        window = _window(node, (0.0, 100.0), (0.0, 10.0), 10.0)
        violations = audit_windows({job: window}, algorithm=SlotSearchAlgorithm.ALP)
        assert [v.kind for v in violations] == ["contract"]
        assert violations[0].job_name == job.name

    def test_amp_budget_tolerates_expensive_slot(self):
        node = make_resource(price=9.0)
        job = _job(volume=10.0, max_price=10.0)  # budget 100 >= cost 90
        window = _window(node, (0.0, 100.0), (0.0, 10.0), 10.0)
        assert audit_windows({job: window}, algorithm=SlotSearchAlgorithm.AMP) == []

    def test_no_algorithm_skips_price_checks(self):
        node = make_resource(price=9.0)
        job = _job(volume=10.0, max_price=1.0)
        window = _window(node, (0.0, 100.0), (0.0, 10.0), 10.0)
        assert audit_windows({job: window}, algorithm=None) == []


class TestOverlapCheck:
    def test_overlap_flagged(self):
        node = make_resource()
        job_a, job_b = _job(), _job()
        first = _window(node, (0.0, 100.0), (0.0, 10.0), 10.0)
        second = _window(node, (0.0, 100.0), (5.0, 15.0), 10.0)
        violations = audit_windows({job_a: first, job_b: second})
        assert any(v.kind == "overlap" for v in violations)

    def test_disjoint_passes(self):
        node = make_resource()
        job_a, job_b = _job(), _job()
        first = _window(node, (0.0, 100.0), (0.0, 10.0), 10.0)
        second = _window(node, (0.0, 100.0), (10.0, 20.0), 10.0)
        assert audit_windows({job_a: first, job_b: second}) == []


class TestContainmentCheck:
    def test_placement_outside_vacancy_flagged(self):
        node = make_resource()
        job = _job()
        window = _window(node, (0.0, 100.0), (0.0, 10.0), 10.0)
        # Reference list where the node is only vacant later.
        reference = SlotList([Slot(node, 50.0, 100.0)])
        violations = audit_windows({job: window}, slot_list=reference)
        assert [v.kind for v in violations] == ["containment"]

    def test_placement_inside_vacancy_passes(self):
        node = make_resource()
        job = _job()
        window = _window(node, (0.0, 100.0), (0.0, 10.0), 10.0)
        reference = SlotList([Slot(node, 0.0, 100.0)])
        assert audit_windows({job: window}, slot_list=reference) == []


class TestConstraintCheck:
    def test_budget_violation_flagged(self):
        node = make_resource(price=5.0)
        job = _job()
        window = _window(node, (0.0, 100.0), (0.0, 10.0), 10.0)  # cost 50
        violations = audit_windows({job: window}, budget_limit=30.0)
        assert [v.kind for v in violations] == ["constraint"]

    def test_quota_violation_flagged(self):
        node = make_resource()
        job = _job()
        window = _window(node, (0.0, 100.0), (0.0, 10.0), 10.0)  # time 10
        violations = audit_windows({job: window}, time_quota=5.0)
        assert [v.kind for v in violations] == ["constraint"]

    def test_within_limits_passes(self):
        node = make_resource(price=5.0)
        job = _job()
        window = _window(node, (0.0, 100.0), (0.0, 10.0), 10.0)
        assert audit_windows({job: window}, budget_limit=50.0, time_quota=10.0) == []


class TestRequireValid:
    def test_raises_with_violations(self):
        violations = audit_windows(
            {_job(): _window(make_resource(price=5.0), (0.0, 100.0), (0.0, 10.0), 10.0)},
            budget_limit=1.0,
        )
        with pytest.raises(AuditError) as excinfo:
            require_valid(violations)
        assert excinfo.value.violations == violations

    def test_noop_when_clean(self):
        require_valid([])  # must not raise


class TestAuditOutcome:
    def test_real_scheduler_output_is_clean(self):
        slots = make_uniform_slots(3, length=300.0, price=2.0)
        batch = Batch(
            [
                Job(ResourceRequest(2, 50.0, max_price=3.0), priority=0),
                Job(ResourceRequest(1, 40.0, max_price=3.0), priority=1),
            ]
        )
        config = SchedulerConfig(
            algorithm=SlotSearchAlgorithm.AMP, max_alternatives_per_job=2
        )
        outcome = BatchScheduler(config).schedule(slots, batch)
        violations = audit_outcome(outcome, slots, algorithm=SlotSearchAlgorithm.AMP)
        assert violations == []
