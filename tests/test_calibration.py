"""Tests for the price-cap calibration harness (repro.sim.calibration)."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.core import Criterion, InvalidRequestError
from repro.sim import ExperimentConfig, ExperimentRunner, summarize
from repro.sim.calibration import (
    PAPER_TARGET,
    CalibrationTarget,
    calibrate,
    score,
)


@pytest.fixture(scope="module")
def small_summary():
    config = ExperimentConfig(objective=Criterion.TIME, iterations=40, seed=11)
    return summarize(ExperimentRunner(config).run())


class TestScore:
    def test_perfect_match_scores_zero(self, small_summary):
        ratios = small_summary.ratios()
        target = CalibrationTarget(
            time_gain=ratios.amp_time_gain,
            cost_premium=ratios.amp_cost_premium,
            alp_alternatives_per_job=small_summary.alp.mean_alternatives_per_job,
            alternatives_factor=ratios.alternatives_factor,
        )
        assert score(small_summary, target) == pytest.approx(0.0)

    def test_distance_grows_with_mismatch(self, small_summary):
        near = CalibrationTarget(
            time_gain=small_summary.ratios().amp_time_gain + 0.01
        )
        far = CalibrationTarget(time_gain=small_summary.ratios().amp_time_gain + 0.2)
        assert score(small_summary, near) < score(small_summary, far)

    def test_empty_summary_scores_infinity(self, small_summary):
        empty = dataclasses.replace(small_summary, counted=0)
        assert math.isinf(score(empty))

    def test_zero_target_rejected(self, small_summary):
        with pytest.raises(InvalidRequestError):
            score(small_summary, CalibrationTarget(time_gain=0.0))


class TestCalibrate:
    def test_requires_candidates(self):
        with pytest.raises(InvalidRequestError):
            calibrate([])

    def test_results_sorted_by_distance(self):
        results = calibrate(
            [(0.9, 1.3), (2.0, 3.0)],
            iterations=30,
            seed=11,
        )
        assert len(results) == 2
        assert results[0].distance <= results[1].distance

    def test_default_range_beats_generous_cap(self):
        # The shipped default must fit the paper better than a cap so
        # generous that ALP stops being constrained at all.
        results = calibrate(
            [(0.9, 1.3), (2.5, 3.5)],
            iterations=40,
            seed=11,
        )
        assert results[0].factor_range == (0.9, 1.3)

    def test_paper_target_constants(self):
        assert PAPER_TARGET.time_gain == pytest.approx(0.35)
        assert PAPER_TARGET.alp_alternatives_per_job == pytest.approx(7.39)
