"""Tests for the multi-pass alternative search (repro.core.search)."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Batch,
    InvalidRequestError,
    Job,
    Resource,
    ResourceRequest,
    Slot,
    SlotList,
    SlotSearchAlgorithm,
    find_alternatives,
)

from tests.conftest import make_resource, make_uniform_slots


def _batch(*requests: ResourceRequest) -> Batch:
    return Batch(
        Job(request, name=f"j{i}", priority=i) for i, request in enumerate(requests)
    )


class TestFinderResolution:
    def test_enum_values(self):
        assert SlotSearchAlgorithm("alp") is SlotSearchAlgorithm.ALP
        assert SlotSearchAlgorithm("amp") is SlotSearchAlgorithm.AMP

    def test_custom_finder_is_used(self):
        calls = []

        def never_finds(slots, request):
            calls.append(request)
            return None

        slots = make_uniform_slots(3)
        result = find_alternatives(slots, _batch(ResourceRequest(1, 10.0)), never_finds)
        assert result.total_alternatives == 0
        assert len(calls) == 1  # one job, one pass, then stop

    def test_invalid_caps_rejected(self):
        slots = make_uniform_slots(1)
        batch = _batch(ResourceRequest(1, 10.0))
        with pytest.raises(InvalidRequestError):
            find_alternatives(slots, batch, max_passes=0)
        with pytest.raises(InvalidRequestError):
            find_alternatives(slots, batch, max_alternatives_per_job=0)


class TestSearchScheme:
    def test_single_job_fills_slot_with_alternatives(self):
        # One node vacant for 100, job of volume 25 -> exactly 4 disjoint
        # alternatives back to back.
        slots = make_uniform_slots(1, length=100.0)
        result = find_alternatives(slots, _batch(ResourceRequest(1, 25.0)))
        assert result.total_alternatives == 4
        starts = sorted(w.start for w in next(iter(result.alternatives.values())))
        assert starts == [0.0, 25.0, 50.0, 75.0]
        assert len(result.remaining_slots) == 0

    def test_alternatives_are_pairwise_disjoint(self):
        slots = make_uniform_slots(3, length=200.0)
        batch = _batch(
            ResourceRequest(2, 60.0),
            ResourceRequest(1, 45.0),
        )
        result = find_alternatives(slots, batch)
        windows = list(itertools.chain.from_iterable(result.alternatives.values()))
        for first, second in itertools.combinations(windows, 2):
            assert not first.intersects(second)

    def test_priority_order_gets_first_pick(self):
        # Two identical jobs; only one window fits.  The higher-priority
        # job must win it.
        slots = make_uniform_slots(1, length=50.0)
        batch = _batch(ResourceRequest(1, 50.0), ResourceRequest(1, 50.0))
        result = find_alternatives(slots, batch)
        counts = result.counts_by_job()
        assert counts == {"j0": 1, "j1": 0}

    def test_jobs_without_alternatives_reported(self):
        slots = make_uniform_slots(1, length=50.0)
        batch = _batch(ResourceRequest(1, 50.0), ResourceRequest(5, 50.0))
        result = find_alternatives(slots, batch)
        assert [job.name for job in result.jobs_without_alternatives()] == ["j1"]
        assert not result.all_jobs_covered()

    def test_all_jobs_covered_flag(self):
        slots = make_uniform_slots(2, length=100.0)
        batch = _batch(ResourceRequest(1, 30.0), ResourceRequest(1, 30.0))
        result = find_alternatives(slots, batch)
        assert result.all_jobs_covered()

    def test_max_alternatives_per_job_cap(self):
        slots = make_uniform_slots(1, length=1000.0)
        batch = _batch(ResourceRequest(1, 10.0))
        result = find_alternatives(slots, batch, max_alternatives_per_job=3)
        assert result.total_alternatives == 3

    def test_max_passes_cap(self):
        slots = make_uniform_slots(1, length=1000.0)
        batch = _batch(ResourceRequest(1, 10.0))
        result = find_alternatives(slots, batch, max_passes=2)
        assert result.passes == 2
        assert result.total_alternatives == 2

    def test_input_list_untouched(self):
        slots = make_uniform_slots(2, length=100.0)
        before = list(slots)
        find_alternatives(slots, _batch(ResourceRequest(1, 30.0)))
        assert list(slots) == before

    def test_empty_batch(self):
        slots = make_uniform_slots(2)
        result = find_alternatives(slots, Batch())
        assert result.total_alternatives == 0
        assert result.mean_alternatives_per_job == 0.0
        assert result.all_jobs_covered()

    def test_remaining_slots_disjoint_from_windows(self):
        slots = make_uniform_slots(2, length=150.0)
        batch = _batch(ResourceRequest(1, 40.0), ResourceRequest(2, 60.0))
        result = find_alternatives(slots, batch)
        windows = list(itertools.chain.from_iterable(result.alternatives.values()))
        for slot in result.remaining_slots:
            for window in windows:
                for resource, start, end in window.occupied_spans():
                    if resource == slot.resource:
                        assert end <= slot.start or slot.end <= start

    def test_amp_finds_superset_count_of_alp(self):
        # Environment where the only possible partner node is expensive:
        # ALP's per-slot cap (5 < 8) rules it out entirely, while AMP's
        # budget S = 5*50*2 = 500 covers cheap+gold = (2+8)*50 = 500.
        cheap = Slot(make_resource("cheap", price=2.0), 0.0, 100.0)
        gold = Slot(make_resource("gold", price=8.0), 0.0, 100.0)
        slots = SlotList([cheap, gold])
        batch = _batch(ResourceRequest(2, 50.0, max_price=5.0))
        amp_result = find_alternatives(slots, batch, SlotSearchAlgorithm.AMP)
        alp_result = find_alternatives(slots, batch, SlotSearchAlgorithm.ALP)
        assert alp_result.total_alternatives == 0
        assert amp_result.total_alternatives == 2  # [0,50) and [50,100)

    def test_rho_parameter_reaches_amp(self):
        slots = make_uniform_slots(2, length=100.0, price=4.0)
        batch = _batch(ResourceRequest(2, 50.0, max_price=4.0))
        full = find_alternatives(slots, batch, SlotSearchAlgorithm.AMP, rho=1.0)
        # rho=0.5 shrinks S below the only window's cost -> nothing found.
        tight = find_alternatives(slots, batch, SlotSearchAlgorithm.AMP, rho=0.5)
        assert full.total_alternatives == 2
        assert tight.total_alternatives == 0


# --------------------------------------------------------------------- #
# Property-based invariants                                             #
# --------------------------------------------------------------------- #


def _random_environment(seed: int):
    rng = random.Random(seed)
    slots = []
    start = 0.0
    for i in range(rng.randint(15, 30)):
        if rng.random() > 0.4:
            start += rng.uniform(0.0, 10.0)
        node = Resource(
            f"n{i}", performance=rng.uniform(1.0, 3.0), price=rng.uniform(1.0, 6.0)
        )
        slots.append(Slot(node, start, start + rng.uniform(50.0, 300.0)))
    requests = [
        ResourceRequest(
            node_count=rng.randint(1, 4),
            volume=rng.uniform(30.0, 150.0),
            min_performance=rng.uniform(1.0, 2.0),
            max_price=rng.uniform(2.0, 8.0),
        )
        for _ in range(rng.randint(2, 5))
    ]
    batch = Batch(Job(request, priority=i) for i, request in enumerate(requests))
    return SlotList(slots), batch


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    algorithm=st.sampled_from(list(SlotSearchAlgorithm)),
)
def test_search_invariants(seed, algorithm):
    """For both algorithms, on random environments: windows are valid and
    pairwise disjoint, vacant time is conserved, and the remaining list
    keeps its ordering invariants."""
    slots, batch = _random_environment(seed)
    result = find_alternatives(slots, batch, algorithm)
    windows = list(itertools.chain.from_iterable(result.alternatives.values()))
    for job, job_windows in result.alternatives.items():
        for window in job_windows:
            budget = job.request.budget if algorithm is SlotSearchAlgorithm.AMP else None
            assert window.satisfies(job.request, budget=budget)
    for first, second in itertools.combinations(windows, 2):
        assert not first.intersects(second)
    occupied = sum(
        allocation.runtime for window in windows for allocation in window.allocations
    )
    assert result.remaining_slots.total_vacant_time() + occupied == pytest.approx(
        slots.total_vacant_time(), rel=1e-9
    )
    assert result.remaining_slots.is_sorted()
    assert result.remaining_slots.check_no_overlap()


# --------------------------------------------------------------------- #
# Sharded-search dispatch                                               #
# --------------------------------------------------------------------- #


class TestShardDispatch:
    """Validation of the ``shards``/``shard_processes`` dispatch rules.

    The regression pinned here: ``shards > 1`` with a *default*
    ``use_index`` under enabled telemetry used to be able to fall
    through to the serial instrumented reference path — a silent index
    bypass that made the "sharded" run serial.  It must raise instead.
    """

    def _smoke(self, **kwargs):
        slots = make_uniform_slots(4, length=100.0)
        batch = _batch(ResourceRequest(2, 30.0), ResourceRequest(1, 20.0))
        return find_alternatives(slots, batch, **kwargs)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(InvalidRequestError, match="shards"):
            self._smoke(shards=0)
        with pytest.raises(InvalidRequestError, match="shards"):
            self._smoke(shards=-3)

    def test_shard_processes_without_sharding_rejected(self):
        with pytest.raises(InvalidRequestError, match="shard_processes"):
            self._smoke(shards=1, shard_processes=True)
        with pytest.raises(InvalidRequestError, match="shard_processes"):
            self._smoke(shard_processes=False)

    def test_custom_finder_cannot_be_sharded(self):
        def never_finds(slots, request):
            return None

        slots = make_uniform_slots(4)
        with pytest.raises(InvalidRequestError, match="custom window finder"):
            find_alternatives(
                slots, _batch(ResourceRequest(1, 10.0)), never_finds, shards=2
            )

    def test_naive_scheme_cannot_be_sharded(self):
        with pytest.raises(InvalidRequestError, match="use_index=False"):
            self._smoke(use_index=False, shards=2)

    def test_default_use_index_under_telemetry_rejected(self):
        # The silent-bypass regression: under enabled telemetry a default
        # use_index selects the serial instrumented reference path, so a
        # sharded request must demand the explicit opt-in.
        from repro.obs.telemetry import configure, get_telemetry, install

        previous = get_telemetry()
        configure()
        try:
            with pytest.raises(InvalidRequestError, match="use_index=True"):
                self._smoke(shards=2)
        finally:
            install(previous)

    def test_explicit_use_index_under_telemetry_runs_sharded(self):
        from repro.obs.telemetry import configure, get_telemetry, install

        serial = self._smoke(use_index=True)
        previous = get_telemetry()
        configure()
        try:
            sharded = self._smoke(shards=2, use_index=True)
        finally:
            install(previous)
        assert sharded.counts_by_job() == serial.counts_by_job()
        assert sharded.passes == serial.passes

    def test_default_use_index_without_telemetry_runs_sharded(self):
        serial = self._smoke(use_index=True)
        sharded = self._smoke(shards=3)
        assert sharded.counts_by_job() == serial.counts_by_job()
        assert [
            sorted(w.start for w in windows)
            for windows in sharded.alternatives.values()
        ] == [
            sorted(w.start for w in windows)
            for windows in serial.alternatives.values()
        ]
