"""Invariant checks must survive ``python -O``.

``-O`` strips every ``assert`` statement, which is exactly why library
invariants raise typed errors instead (lint rule RPR003).  These tests
run the invariant-bearing code paths in a ``python -O`` subprocess and
require the typed error to fire — if anyone reintroduces an ``assert``,
the check silently vanishes under ``-O`` and the subprocess exits 0,
failing the test here.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.errors import InvariantViolationError, SchedulingError

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Marker printed by each probe script when the typed error fired.
OK = "TYPED-ERROR-RAISED"

ARRIVALS_PROBE = f"""
from repro.core.errors import InvariantViolationError
from repro.grid.arrivals import PoissonArrivals

arrivals = PoissonArrivals(rate=1.0, seed=1)
arrivals.generator = None  # simulate the impossible state
try:
    list(arrivals.stream(0.0, 10.0))
except InvariantViolationError:
    print("{OK}")
"""

FIGURE_SERIES_PROBE = f"""
from repro.core.errors import InvariantViolationError
from repro.sim.figures import FigureData, figure_series

panel = FigureData(name="fig5", measured={{}}, reference={{}}, series=None)
try:
    figure_series(panel)
except InvariantViolationError:
    print("{OK}")
"""

SPAN_STACK_PROBE = f"""
from repro.core.errors import TelemetryError
from repro.obs.telemetry import Telemetry

telemetry = Telemetry(enabled=True)
outer = telemetry.span("outer")
inner = telemetry.span("inner")
outer.__enter__()
inner.__enter__()
try:
    outer.__exit__(None, None, None)  # pops inner's record, expects outer's
except TelemetryError:
    print("{OK}")
"""


def run_optimized(script: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-O", "-c", script],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


@pytest.mark.parametrize(
    "script",
    [ARRIVALS_PROBE, FIGURE_SERIES_PROBE, SPAN_STACK_PROBE],
    ids=["arrivals-generator", "figure-series", "span-stack"],
)
def test_invariant_survives_python_O(script):
    result = run_optimized(script)
    assert result.returncode == 0, result.stderr
    assert OK in result.stdout, (
        "typed invariant did not fire under python -O "
        f"(stdout={result.stdout!r}, stderr={result.stderr!r})"
    )


def test_asserts_are_actually_stripped_under_O():
    # Sanity check of the premise: a bare assert does nothing under -O.
    result = run_optimized("assert False\nprint('survived')")
    assert result.returncode == 0
    assert "survived" in result.stdout


def test_invariant_violation_is_a_scheduling_error():
    # CLI exit-code mapping catches SchedulingError; the invariant type
    # must stay inside that hierarchy.
    assert issubclass(InvariantViolationError, SchedulingError)
    with pytest.raises(SchedulingError):
        raise InvariantViolationError("probe")
