"""Tests for the perf-regression gate and the bench history log.

The gate (``benchmarks/gate.py``) is what CI runs after re-measuring
the EXP-SPEEDUP workload, so its exit-code contract is pinned here:
0 within tolerance, 1 regressed, 2 unusable input.  The history log
(``record_history``) is the append-only trail those comparisons read.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import benchmarks.conftest as bench_conftest
from benchmarks.gate import GateError, evaluate, load_metric, main
from repro.obs import clock


def write_doc(path: Path, value: float) -> str:
    path.write_text(
        json.dumps({"experiment_workload": {"index_speedup": value}}) + "\n",
        encoding="utf-8",
    )
    return str(path)


GATE_ARGS = ["--section", "experiment_workload", "--metric", "index_speedup"]


class TestEvaluate:
    def test_within_tolerance_passes(self):
        ok, verdict = evaluate(6.0, 5.0, 0.25, "higher")
        assert ok
        assert "floor 4.5" in verdict

    def test_regression_past_tolerance_fails(self):
        ok, _ = evaluate(6.0, 4.0, 0.25, "higher")
        assert not ok

    def test_improvement_always_passes(self):
        ok, verdict = evaluate(6.0, 9.0, 0.25, "higher")
        assert ok
        assert "+50.0%" in verdict

    def test_lower_is_better_direction(self):
        ok, _ = evaluate(1.0, 1.2, 0.25, "lower")
        assert ok
        ok, _ = evaluate(1.0, 1.3, 0.25, "lower")
        assert not ok


class TestLoadMetric:
    def test_reads_bench_document(self, tmp_path):
        path = write_doc(tmp_path / "bench.json", 6.5)
        assert load_metric(path, "experiment_workload", "index_speedup") == 6.5

    def test_missing_metric_raises(self, tmp_path):
        path = write_doc(tmp_path / "bench.json", 6.5)
        with pytest.raises(GateError, match="missing"):
            load_metric(path, "experiment_workload", "nope")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GateError, match="cannot read"):
            load_metric(str(tmp_path / "nope.json"), "s", "m")

    def test_non_numeric_value_raises(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text('{"s": {"m": "fast"}}', encoding="utf-8")
        with pytest.raises(GateError, match="not a number"):
            load_metric(str(path), "s", "m")

    def test_history_latest_entry_wins(self, tmp_path):
        path = tmp_path / "history.jsonl"
        lines = [
            {"section": "experiment_workload", "values": {"index_speedup": 5.0}},
            {"section": "other", "values": {"index_speedup": 99.0}},
            {"section": "experiment_workload", "values": {"index_speedup": 6.6}},
        ]
        path.write_text(
            "".join(json.dumps(line) + "\n" for line in lines), encoding="utf-8"
        )
        assert load_metric(str(path), "experiment_workload", "index_speedup") == 6.6

    def test_history_without_matching_entry_raises(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"section": "other", "values": {}}\n', encoding="utf-8")
        with pytest.raises(GateError, match="no history entry"):
            load_metric(str(path), "experiment_workload", "index_speedup")


class TestMain:
    def test_pass_exits_zero(self, tmp_path, capsys):
        baseline = write_doc(tmp_path / "base.json", 6.6)
        candidate = write_doc(tmp_path / "cand.json", 6.2)
        code = main(["--baseline", baseline, "--candidate", candidate] + GATE_ARGS)
        assert code == 0
        assert "bench-gate PASS" in capsys.readouterr().out

    def test_synthetic_regression_exits_one(self, tmp_path, capsys):
        baseline = write_doc(tmp_path / "base.json", 6.6)
        candidate = write_doc(tmp_path / "cand.json", 3.0)
        code = main(["--baseline", baseline, "--candidate", candidate] + GATE_ARGS)
        assert code == 1
        assert "bench-gate FAIL" in capsys.readouterr().err

    def test_unusable_input_exits_two(self, tmp_path, capsys):
        baseline = write_doc(tmp_path / "base.json", 6.6)
        code = main(
            ["--baseline", baseline, "--candidate", str(tmp_path / "nope.json")]
            + GATE_ARGS
        )
        assert code == 2
        assert "bench-gate error" in capsys.readouterr().err

    def test_negative_tolerance_exits_two(self, tmp_path):
        baseline = write_doc(tmp_path / "base.json", 6.6)
        code = main(
            ["--baseline", baseline, "--candidate", baseline, "--tolerance", "-1"]
            + GATE_ARGS
        )
        assert code == 2

    def test_history_baseline_gates_candidate(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        history.write_text(
            json.dumps(
                {"section": "experiment_workload", "values": {"index_speedup": 6.6}}
            )
            + "\n",
            encoding="utf-8",
        )
        candidate = write_doc(tmp_path / "cand.json", 3.0)
        code = main(
            ["--baseline", str(history), "--candidate", candidate] + GATE_ARGS
        )
        assert code == 1


class TestRecordHistory:
    def test_appends_timestamped_compact_line(self, tmp_path, monkeypatch):
        history = tmp_path / "BENCH_history.jsonl"
        monkeypatch.setattr(bench_conftest, "HISTORY_PATH", str(history))
        with clock.freeze(at=1234.5):
            bench_conftest.record_history("x", "workload", {"speedup": 6.0})
            bench_conftest.record_history("x", "workload", {"speedup": 6.1})
        lines = history.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        entry = json.loads(lines[0])
        assert entry["recorded_at"] == 1234.5
        assert entry["section"] == "workload"
        assert entry["values"] == {"speedup": 6.0}
        # compact, key-sorted encoding: byte-stable across runs
        assert lines[0] == json.dumps(
            entry, separators=(",", ":"), sort_keys=True
        )

    def test_record_baseline_also_appends_history(self, tmp_path, monkeypatch):
        monkeypatch.setattr(bench_conftest, "REPO_ROOT", str(tmp_path))
        monkeypatch.setattr(
            bench_conftest, "HISTORY_PATH", str(tmp_path / "BENCH_history.jsonl")
        )
        bench_conftest.record_baseline("demo", "workload", {"speedup": 5.5})
        document = json.loads((tmp_path / "BENCH_demo.json").read_text())
        assert document["workload"] == {"speedup": 5.5}
        history = (tmp_path / "BENCH_history.jsonl").read_text().splitlines()
        assert len(history) == 1
        assert json.loads(history[0])["values"] == {"speedup": 5.5}

    def test_committed_history_seeds_the_gate(self):
        # The repo ships a first entry so CI's very first gated run has a
        # trajectory to compare against.
        repo_history = Path(bench_conftest.HISTORY_PATH)
        assert repo_history.exists()
        value = load_metric(
            str(repo_history), "experiment_workload", "index_speedup"
        )
        assert value > 0


class TestShardGate:
    """The EXP-SHARD ``shard_speedup`` metric rides the same gate."""

    SHARD_ARGS = ["--section", "shard_workload", "--metric", "shard_speedup"]

    def write_shard_doc(self, path: Path, value: float) -> str:
        path.write_text(
            json.dumps({"shard_workload": {"shard_speedup": value}}) + "\n",
            encoding="utf-8",
        )
        return str(path)

    def test_committed_history_seeds_the_shard_gate(self):
        # BENCH_history.jsonl ships the EXP-SHARD acceptance entry: a
        # >= 2x phase-1 speedup at 4 shards over the serial indexed path.
        repo_history = Path(bench_conftest.HISTORY_PATH)
        assert repo_history.exists()
        value = load_metric(str(repo_history), "shard_workload", "shard_speedup")
        assert value >= 2.0

    def test_regressed_shard_speedup_fails_the_gate(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        history.write_text(
            json.dumps({"section": "shard_workload", "values": {"shard_speedup": 2.8}})
            + "\n",
            encoding="utf-8",
        )
        candidate = self.write_shard_doc(tmp_path / "cand.json", 1.1)
        code = main(
            ["--baseline", str(history), "--candidate", candidate, "--tolerance", "0.5"]
            + self.SHARD_ARGS
        )
        assert code == 1
        assert "bench-gate FAIL" in capsys.readouterr().err

    def test_noisy_but_healthy_shard_speedup_passes(self, tmp_path, capsys):
        # CI runners are noisy: the shard gate runs with tolerance 0.5,
        # so a 2.8x baseline admits candidates down to 1.4x.
        history = tmp_path / "history.jsonl"
        history.write_text(
            json.dumps({"section": "shard_workload", "values": {"shard_speedup": 2.8}})
            + "\n",
            encoding="utf-8",
        )
        candidate = self.write_shard_doc(tmp_path / "cand.json", 1.5)
        code = main(
            ["--baseline", str(history), "--candidate", candidate, "--tolerance", "0.5"]
            + self.SHARD_ARGS
        )
        assert code == 0
        assert "bench-gate PASS" in capsys.readouterr().out
