"""Tests for convergence diagnostics (repro.sim.convergence)."""

from __future__ import annotations

import pytest

from repro.core import Criterion, InvalidRequestError
from repro.sim import ExperimentConfig, ExperimentRunner
from repro.sim.convergence import (
    ConvergencePoint,
    convergence_track,
    is_converged,
    required_samples,
)


@pytest.fixture(scope="module")
def result():
    config = ExperimentConfig(objective=Criterion.TIME, iterations=120, seed=606, resolution=400)
    return ExperimentRunner(config).run()


class TestTrack:
    def test_one_point_per_counted_experiment(self, result):
        track = convergence_track(result)
        assert len(track) == result.counted
        assert [point.counted for point in track] == list(range(1, result.counted + 1))

    def test_final_point_matches_aggregate(self, result):
        from repro.sim import summarize

        track = convergence_track(result)
        summary = summarize(result)
        # Running ratio over sums of per-experiment means equals the
        # aggregate ratio over means (same arithmetic).
        assert track[-1].amp_time_gain == pytest.approx(
            summary.ratios().amp_time_gain, rel=1e-9
        )

    def test_ratios_eventually_positive(self, result):
        track = convergence_track(result)
        assert track[-1].amp_time_gain > 0.1  # AMP advantage is robust


class TestIsConverged:
    def test_validation(self):
        with pytest.raises(InvalidRequestError):
            is_converged([], tail_fraction=0.0)
        with pytest.raises(InvalidRequestError):
            is_converged([], tolerance=0.0)

    def test_empty_track_not_converged(self):
        assert not is_converged([])

    def test_flat_track_converges(self):
        track = [ConvergencePoint(i, 0.3, 0.2) for i in range(1, 20)]
        assert is_converged(track)

    def test_wild_tail_fails(self):
        track = [ConvergencePoint(i, 0.3, 0.2) for i in range(1, 10)]
        track.append(ConvergencePoint(10, 0.9, 0.2))
        track.append(ConvergencePoint(11, 0.3, 0.2))
        assert not is_converged(track, tail_fraction=0.5, tolerance=0.05)

    def test_real_series_converges_loosely(self, result):
        track = convergence_track(result)
        # With only ~dozens of counted samples the ratios still wiggle;
        # a loose band must already hold over the last quarter.
        assert is_converged(track, tail_fraction=0.25, tolerance=0.08)


class TestRequiredSamples:
    def test_validation(self):
        with pytest.raises(InvalidRequestError):
            required_samples([], tolerance=-1.0)

    def test_empty_is_none(self):
        assert required_samples([]) is None

    def test_flat_track_settles_immediately(self):
        track = [ConvergencePoint(i, 0.3, 0.2) for i in range(1, 5)]
        assert required_samples(track) == 1

    def test_late_excursion_resets(self):
        track = [ConvergencePoint(1, 0.3, 0.2), ConvergencePoint(2, 0.9, 0.2),
                 ConvergencePoint(3, 0.3, 0.2)]
        assert required_samples(track, tolerance=0.05) == 3

    def test_real_series_settles_before_end(self, result):
        track = convergence_track(result)
        settle = required_samples(track, tolerance=0.08)
        assert settle is not None
        assert settle < result.counted
