"""Tests for vector-criteria optimization (Pareto front, scalarization)."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    InfeasibleConstraintError,
    InvalidRequestError,
    Job,
    OptimizationError,
    ResourceRequest,
    Slot,
    TaskAllocation,
    Window,
    minimize_weighted,
    pareto_front,
)
from repro.core.multicriteria import ParetoPoint

from tests.conftest import make_resource


def _window(price: float, volume: float, start: float = 0.0) -> Window:
    node = make_resource(price=price)
    slot = Slot(node, start, start + volume)
    request = ResourceRequest(node_count=1, volume=volume)
    return Window(request, [TaskAllocation(slot, start, start + volume)])


def _job(name: str) -> Job:
    return Job(ResourceRequest(1, 10.0), name=name)


def _alts(spec: dict[str, list[tuple[float, float]]]):
    mapping = {}
    cursor = 0.0
    for name, pairs in spec.items():
        windows = []
        for price, volume in pairs:
            windows.append(_window(price, volume, start=cursor))
            cursor += volume + 1.0
        mapping[_job(name)] = windows
    return mapping


class TestParetoPoint:
    def test_dominance(self):
        a = ParetoPoint(10.0, 100.0, {})
        b = ParetoPoint(20.0, 200.0, {})
        c = ParetoPoint(10.0, 100.0, {})
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c)  # equal points do not dominate


class TestParetoFront:
    def test_single_job_front(self):
        # (time, cost): fast-pricey (10, 100), slow-cheap (30, 30),
        # dominated middle (30, 60).
        alts = _alts({"a": [(10.0, 10.0), (1.0, 30.0), (2.0, 30.0)]})
        front = pareto_front(alts)
        points = [(p.total_time, p.total_cost) for p in front]
        assert points == [(10.0, 100.0), (30.0, 30.0)]

    def test_front_sorted_and_nondominated(self):
        alts = _alts(
            {
                "a": [(10.0, 10.0), (1.0, 30.0)],
                "b": [(5.0, 10.0), (1.0, 20.0)],
            }
        )
        front = pareto_front(alts)
        times = [p.total_time for p in front]
        costs = [p.total_cost for p in front]
        assert times == sorted(times)
        assert costs == sorted(costs, reverse=True)
        for first, second in itertools.combinations(front, 2):
            assert not first.dominates(second)
            assert not second.dominates(first)

    def test_empty(self):
        assert pareto_front({}) == []

    def test_space_cap(self):
        alts = _alts({chr(97 + i): [(1.0, 10.0)] * 10 for i in range(7)})
        with pytest.raises(OptimizationError):
            pareto_front(alts, max_combinations=100)

    def test_uncovered_job_raises(self):
        alts = _alts({"a": [(1.0, 10.0)]})
        alts[_job("empty")] = []
        with pytest.raises(OptimizationError):
            pareto_front(alts)


class TestMinimizeWeighted:
    def test_unconstrained_separates_per_job(self):
        alts = _alts({"a": [(10.0, 10.0), (1.0, 30.0)]})  # weighted: t + c
        # time_weight=1, cost_weight=1: fast = 10+100=110, slow = 30+30=60.
        combo = minimize_weighted(alts, time_weight=1.0, cost_weight=1.0)
        assert combo.total_time == pytest.approx(30.0)

    def test_pure_time_weight_picks_fastest(self):
        alts = _alts({"a": [(10.0, 10.0), (1.0, 30.0)]})
        combo = minimize_weighted(alts, time_weight=1.0, cost_weight=0.0)
        assert combo.total_time == pytest.approx(10.0)

    def test_pure_cost_weight_picks_cheapest(self):
        alts = _alts({"a": [(10.0, 10.0), (1.0, 30.0)]})
        combo = minimize_weighted(alts, time_weight=0.0, cost_weight=1.0)
        assert combo.total_cost == pytest.approx(30.0)

    def test_budget_constraint_enforced(self):
        alts = _alts({"a": [(10.0, 10.0), (1.0, 30.0)]})
        combo = minimize_weighted(
            alts, time_weight=1.0, cost_weight=0.0, budget=50.0, resolution=50
        )
        # The fast option costs 100 > 50, so the slow one wins.
        assert combo.total_time == pytest.approx(30.0)

    def test_quota_constraint_enforced(self):
        alts = _alts({"a": [(10.0, 10.0), (1.0, 30.0)]})
        combo = minimize_weighted(
            alts, time_weight=0.0, cost_weight=1.0, quota=15.0, resolution=15
        )
        assert combo.total_cost == pytest.approx(100.0)

    def test_infeasible_constraint_raises(self):
        alts = _alts({"a": [(10.0, 10.0)]})
        with pytest.raises(InfeasibleConstraintError):
            minimize_weighted(alts, budget=50.0, resolution=50)

    def test_validation(self):
        alts = _alts({"a": [(1.0, 10.0)]})
        with pytest.raises(InvalidRequestError):
            minimize_weighted(alts, time_weight=-1.0)
        with pytest.raises(InvalidRequestError):
            minimize_weighted(alts, time_weight=0.0, cost_weight=0.0)
        with pytest.raises(InvalidRequestError):
            minimize_weighted(alts, budget=10.0, quota=10.0)

    def test_empty(self):
        combo = minimize_weighted({})
        assert combo.selection == {}


# --------------------------------------------------------------------- #
# Cross-validation properties                                           #
# --------------------------------------------------------------------- #


def _random_alts(seed: int):
    rng = random.Random(seed)
    return _alts(
        {
            f"job{i}": [
                (float(rng.randint(1, 6)), float(rng.randint(5, 40)))
                for _ in range(rng.randint(1, 4))
            ]
            for i in range(rng.randint(1, 3))
        }
    )


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=50_000),
    time_weight=st.floats(min_value=0.1, max_value=5.0),
    cost_weight=st.floats(min_value=0.1, max_value=5.0),
)
def test_unconstrained_weighted_optimum_lies_on_pareto_front(seed, time_weight, cost_weight):
    """Any *strictly* positive-weight scalarized optimum is
    Pareto-optimal (with a zero weight only weak optimality holds: the
    per-job argmin may tie on the weighted axis and lose on the other)."""
    alts = _random_alts(seed)
    combo = minimize_weighted(alts, time_weight=time_weight, cost_weight=cost_weight)
    front = pareto_front(alts)
    point = ParetoPoint(combo.total_time, combo.total_cost, {})
    assert not any(candidate.dominates(point) for candidate in front)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_front_extremes_match_pure_weights(seed):
    """The front's endpoints are the pure time- and cost-optima."""
    alts = _random_alts(seed)
    front = pareto_front(alts)
    fastest = minimize_weighted(alts, time_weight=1.0, cost_weight=0.0)
    cheapest = minimize_weighted(alts, time_weight=0.0, cost_weight=1.0)
    assert front[0].total_time == pytest.approx(fastest.total_time)
    assert front[-1].total_cost == pytest.approx(cheapest.total_cost)
