"""Unit tests for repro.core.resource."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    DEFAULT_PRICE_BASE,
    InvalidRequestError,
    Resource,
    price_of_performance,
)


class TestPriceOfPerformance:
    def test_etalon_node_price_is_base(self):
        assert price_of_performance(1.0) == pytest.approx(DEFAULT_PRICE_BASE)

    def test_follows_exponential_law(self):
        assert price_of_performance(3.0) == pytest.approx(1.7**3)

    def test_custom_base(self):
        assert price_of_performance(2.0, base=2.0) == pytest.approx(4.0)

    def test_rejects_zero_performance(self):
        with pytest.raises(InvalidRequestError):
            price_of_performance(0.0)

    def test_rejects_negative_performance(self):
        with pytest.raises(InvalidRequestError):
            price_of_performance(-1.0)

    @given(st.floats(min_value=0.1, max_value=5.0))
    def test_monotone_in_performance(self, p):
        assert price_of_performance(p + 0.5) > price_of_performance(p)


class TestResourceValidation:
    def test_rejects_zero_performance(self):
        with pytest.raises(InvalidRequestError):
            Resource("bad", performance=0.0)

    def test_rejects_negative_price(self):
        with pytest.raises(InvalidRequestError):
            Resource("bad", price=-1.0)

    def test_accepts_zero_price(self):
        assert Resource("free", price=0.0).price == 0.0


class TestResourceIdentity:
    def test_uids_are_unique(self):
        a = Resource("x")
        b = Resource("x")
        assert a.uid != b.uid
        assert a != b

    def test_explicit_uid_equality(self):
        a = Resource("x", uid=42)
        b = Resource("y", uid=42)
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_as_dict_key(self):
        a = Resource("x")
        table = {a: 1}
        assert table[a] == 1

    def test_not_equal_to_other_types(self):
        assert Resource("x") != "x"


class TestResourceEconomics:
    def test_runtime_scales_inversely_with_performance(self):
        fast = Resource("fast", performance=2.0)
        assert fast.runtime_of(100.0) == pytest.approx(50.0)

    def test_etalon_runtime_is_volume(self):
        assert Resource("etalon", performance=1.0).runtime_of(80.0) == pytest.approx(80.0)

    def test_runtime_rejects_negative_volume(self):
        with pytest.raises(InvalidRequestError):
            Resource("n").runtime_of(-1.0)

    def test_cost_is_price_times_runtime(self):
        node = Resource("n", performance=2.0, price=6.0)
        # Section 6: C·t/P = 6 * 100 / 2.
        assert node.cost_of(100.0) == pytest.approx(300.0)

    def test_price_quality_ratio(self):
        node = Resource("n", performance=2.0, price=5.0)
        assert node.price_quality == pytest.approx(2.5)

    @given(
        st.floats(min_value=0.5, max_value=4.0),
        st.floats(min_value=0.0, max_value=300.0),
    )
    def test_cost_non_negative(self, performance, volume):
        node = Resource("n", performance=performance, price=1.3)
        assert node.cost_of(volume) >= 0.0
