"""Tests for the discrete-event simulation driver (repro.grid.events)."""

from __future__ import annotations

import pytest

from repro.core import (
    BatchScheduler,
    InfeasiblePolicy,
    InvalidRequestError,
    Job,
    ResourceRequest,
    SchedulerConfig,
)
from repro.grid import (
    Cluster,
    ComputeNode,
    EventKind,
    JobState,
    Metascheduler,
    PoissonArrivals,
    SimulationDriver,
    VOEnvironment,
)


def _driver(node_count: int = 3, period: float = 50.0) -> SimulationDriver:
    nodes = [ComputeNode(f"n{i}", performance=1.0, price=2.0) for i in range(node_count)]
    environment = VOEnvironment([Cluster("c", nodes)])
    scheduler = BatchScheduler(
        SchedulerConfig(infeasible_policy=InfeasiblePolicy.EARLIEST)
    )
    meta = Metascheduler(environment, scheduler, period=period, horizon=400.0)
    return SimulationDriver(meta)


def _job(name: str, node_count: int = 1) -> Job:
    return Job(ResourceRequest(node_count, 50.0, max_price=3.0), name=name)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        driver = _driver()
        driver.add_ticks(0.0, 100.0)
        driver.add_submission(_job("a"), 75.0)
        driver.add_submission(_job("b"), 10.0)
        events = driver.run()
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_same_time_priority_arrival_before_tick(self):
        driver = _driver()
        driver.add_ticks(0.0, 0.0)
        driver.add_submission(_job("a"), 0.0)
        events = driver.run()
        assert [event.kind for event in events] == [EventKind.ARRIVAL, EventKind.TICK]
        # The arrival was batched by the same-time tick.
        tick = events[-1]
        assert tick.report is not None
        assert tick.report.batch_size == 1

    def test_until_limits_execution(self):
        driver = _driver(period=50.0)
        driver.add_ticks(0.0, 200.0)
        fired = driver.run(until=100.0)
        assert [event.time for event in fired] == [0.0, 50.0, 100.0]
        assert driver.pending_events() == 2

    def test_tick_reports_attached(self):
        driver = _driver()
        driver.add_submission(_job("a"), 0.0)
        driver.add_ticks(0.0, 50.0)
        events = driver.run()
        ticks = [event for event in events if event.kind is EventKind.TICK]
        assert all(tick.report is not None for tick in ticks)
        assert ticks[0].report.scheduled == 1

    def test_rejects_negative_time_and_bad_spans(self):
        driver = _driver()
        with pytest.raises(InvalidRequestError):
            driver.add_submission(_job("a"), -1.0)
        with pytest.raises(InvalidRequestError):
            driver.add_ticks(100.0, 0.0)
        node = next(driver.metascheduler.environment.nodes())
        with pytest.raises(InvalidRequestError):
            driver.add_outage(node, 0.0, 0.0)


class TestArrivalsIntegration:
    def test_add_arrivals_schedules_stream(self):
        driver = _driver()
        count = driver.add_arrivals(PoissonArrivals(rate=0.01, seed=5), 0.0, 1000.0)
        assert count == driver.pending_events()
        driver.add_ticks(0.0, 1000.0)
        driver.run()
        assert len(driver.metascheduler.trace) == count


class TestOutageIntegration:
    def test_outage_resubmission_logged_and_rescheduled(self):
        driver = _driver()
        job = _job("victim", node_count=2)
        driver.add_submission(job, 0.0)
        driver.add_ticks(0.0, 200.0)
        # Fail the first node shortly after the first tick scheduled the
        # job; the outage covers the job's window start.
        node = next(driver.metascheduler.environment.nodes())
        driver.add_outage(node, 10.0, 100.0)
        driver.run()
        record = driver.metascheduler.trace.record_for(job)
        outage_events = [
            event for event in driver.log if event.kind is EventKind.OUTAGE
        ]
        assert len(outage_events) == 1
        # Whether the job was hit depends on node choice; if it was, it
        # must have been rescheduled by a later tick.
        if "victim" in outage_events[0].description:
            assert record.resubmissions == 1
        assert record.state in (JobState.SCHEDULED, JobState.COMPLETED)

    def test_custom_event(self):
        driver = _driver()
        driver.add_custom(5.0, lambda now: f"checkpoint at {now:g}")
        (event,) = driver.run()
        assert event.kind is EventKind.CUSTOM
        assert event.description == "checkpoint at 5"

    def test_log_accumulates_across_runs(self):
        driver = _driver()
        driver.add_ticks(0.0, 50.0)
        driver.run(until=0.0)
        driver.run()
        assert len(driver.log) == 2
