"""Exact reproduction of the Section 4 worked example (Figs. 2-3).

Every assertion below corresponds to a fact stated in the paper's text;
the layout reconstruction is documented in ``repro.examples_data``.
"""

from __future__ import annotations

import pytest

from repro.core import SlotSearchAlgorithm, find_alternatives
from repro.core import alp, amp
from repro.examples_data import HORIZON, build_example


@pytest.fixture
def example():
    return build_example()


class TestEnvironmentLayout:
    def test_six_nodes_with_paper_prices(self, example):
        assert set(example.nodes) == {f"cpu{i}" for i in range(1, 7)}
        assert example.nodes["cpu6"].price == 12.0

    def test_seven_local_tasks(self, example):
        assert len(example.local_tasks) == 7
        assert {task.name for task in example.local_tasks} == {
            f"p{i}" for i in range(1, 8)
        }

    def test_ten_vacant_slots_sorted(self, example):
        assert len(example.slots) == 10
        assert example.slots.is_sorted()
        assert example.slots.check_no_overlap()

    def test_slots_inside_horizon(self, example):
        lo, hi = HORIZON
        for slot in example.slots:
            assert lo <= slot.start < slot.end <= hi

    def test_uniform_performance(self, example):
        assert all(node.performance == 1.0 for node in example.nodes.values())

    def test_three_jobs_with_paper_requirements(self, example):
        job1, job2, job3 = example.jobs
        assert (job1.request.node_count, job1.request.volume) == (2, 80.0)
        assert (job2.request.node_count, job2.request.volume) == (3, 30.0)
        assert (job3.request.node_count, job3.request.volume) == (2, 50.0)
        # Total window cost-per-time limits 10, 30, 6.
        assert job1.request.max_price * 2 == pytest.approx(10.0)
        assert job2.request.max_price * 3 == pytest.approx(30.0)
        assert job3.request.max_price * 2 == pytest.approx(6.0)


class TestAmpFirstIteration:
    """Fig. 2 (b): windows W1, W2, W3 of the first search pass."""

    def _first_pass(self, example):
        slots = example.slots.copy()
        windows = []
        for job in example.batch:
            window = amp.find_window(slots, job.request)
            assert window is not None
            for resource, start, end in window.occupied_spans():
                slots.subtract(resource, start, end)
            windows.append(window)
        return windows

    def test_w1_on_cpu1_cpu4_at_150_230(self, example):
        w1, _, _ = self._first_pass(example)
        assert {r.name for r in w1.resources()} == {"cpu1", "cpu4"}
        assert (w1.start, w1.end) == (150.0, 230.0)
        assert w1.unit_cost == pytest.approx(10.0)

    def test_w1_earlier_windows_fail_cost_only(self, example):
        # "Other possible windows with earlier start time do not fit the
        # total cost constraint": ignoring cost, a 2-node window exists
        # at time 0 (cpu3 + cpu6, unit cost 14 > 10).
        job1 = example.jobs[0]
        unpriced = alp.find_window(example.slots, job1.request, check_price=False)
        assert unpriced is not None
        assert unpriced.start == 0.0
        assert unpriced.unit_cost == pytest.approx(14.0)
        assert unpriced.cost > job1.request.budget

    def test_w2_on_cpu1_cpu2_cpu4_cost_14(self, example):
        _, w2, _ = self._first_pass(example)
        assert {r.name for r in w2.resources()} == {"cpu1", "cpu2", "cpu4"}
        assert w2.unit_cost == pytest.approx(14.0)
        assert w2.start == 230.0  # right after W1 releases cpu1/cpu4

    def test_w3_spans_450_500(self, example):
        _, _, w3 = self._first_pass(example)
        assert (w3.start, w3.end) == (450.0, 500.0)
        assert w3.unit_cost <= 6.0


class TestAlternativesChart:
    """Fig. 3 and the ALP-vs-AMP discussion of Sections 4 and 6."""

    def test_alp_never_uses_cpu6(self, example):
        # ALP's per-slot cap for Job 2 is 30/3 = 10 < 12 = price(cpu6).
        result = find_alternatives(example.slots, example.batch, SlotSearchAlgorithm.ALP)
        for windows in result.alternatives.values():
            for window in windows:
                assert "cpu6" not in {r.name for r in window.resources()}

    def test_amp_uses_cpu6(self, example):
        result = find_alternatives(example.slots, example.batch, SlotSearchAlgorithm.AMP)
        used = {
            resource.name
            for windows in result.alternatives.values()
            for window in windows
            for resource in window.resources()
        }
        assert "cpu6" in used

    def test_every_job_gets_alternatives(self, example):
        for algorithm in SlotSearchAlgorithm:
            result = find_alternatives(example.slots, example.batch, algorithm)
            assert result.all_jobs_covered()

    def test_alternatives_respect_job_budgets(self, example):
        result = find_alternatives(example.slots, example.batch, SlotSearchAlgorithm.AMP)
        for job, windows in result.alternatives.items():
            for window in windows:
                assert window.cost <= job.request.budget + 1e-9

    def test_alp_alternatives_respect_slot_price_caps(self, example):
        result = find_alternatives(example.slots, example.batch, SlotSearchAlgorithm.ALP)
        for job, windows in result.alternatives.items():
            for window in windows:
                for allocation in window.allocations:
                    assert allocation.unit_price <= job.request.max_price

    def test_amp_and_alp_agree_on_first_pass_here(self, example):
        # Running the full first pass (with subtraction between jobs, as
        # the scheme prescribes), ALP and AMP produce windows with the
        # same start times in this example; they diverge only in later
        # alternatives (cpu6 usage).  Pins down behaviour for regression.
        starts: dict[str, list[float]] = {}
        for name, finder in (("alp", alp.find_window), ("amp", amp.find_window)):
            slots = example.slots.copy()
            starts[name] = []
            for job in example.batch:
                window = finder(slots, job.request)
                assert window is not None
                for resource, start, end in window.occupied_spans():
                    slots.subtract(resource, start, end)
                starts[name].append(window.start)
        assert starts["alp"] == starts["amp"] == [150.0, 230.0, 450.0]
