"""Tests for the batch-level criteria (repro.core.criteria)."""

from __future__ import annotations

import pytest

from repro.core import (
    Criterion,
    Job,
    ResourceRequest,
    Slot,
    TaskAllocation,
    Window,
    criteria_vector,
    total_cost,
    total_time,
)

from tests.conftest import make_resource


def _window(price: float, volume: float, start: float = 0.0) -> Window:
    node = make_resource(price=price)
    slot = Slot(node, start, start + volume * 4)
    request = ResourceRequest(node_count=1, volume=volume)
    return Window(request, [TaskAllocation(slot, start, start + volume)])


class TestCriterion:
    def test_cost_of_window(self):
        window = _window(price=3.0, volume=20.0)
        assert Criterion.COST.of(window) == pytest.approx(60.0)

    def test_time_of_window(self):
        window = _window(price=3.0, volume=20.0)
        assert Criterion.TIME.of(window) == pytest.approx(20.0)

    def test_duality(self):
        assert Criterion.COST.dual is Criterion.TIME
        assert Criterion.TIME.dual is Criterion.COST


class TestTotals:
    def test_totals_over_iterable(self):
        windows = [_window(2.0, 10.0), _window(4.0, 30.0)]
        assert total_cost(windows) == pytest.approx(20.0 + 120.0)
        assert total_time(windows) == pytest.approx(40.0)

    def test_totals_over_mapping(self):
        mapping = {
            Job(ResourceRequest(1, 10.0)): _window(2.0, 10.0),
            Job(ResourceRequest(1, 30.0)): _window(4.0, 30.0),
        }
        assert total_cost(mapping) == pytest.approx(140.0)
        assert total_time(mapping) == pytest.approx(40.0)

    def test_empty(self):
        assert total_cost([]) == 0.0
        assert total_time([]) == 0.0


class TestCriteriaVector:
    def test_slacks(self):
        windows = [_window(2.0, 10.0)]  # cost 20, time 10
        vector = criteria_vector(windows, budget_limit=50.0, time_quota=25.0)
        assert vector.cost == pytest.approx(20.0)
        assert vector.time == pytest.approx(10.0)
        assert vector.budget_slack == pytest.approx(30.0)
        assert vector.time_slack == pytest.approx(15.0)
        assert vector.within_budget
        assert vector.within_quota

    def test_violations_detected(self):
        windows = [_window(2.0, 10.0)]
        vector = criteria_vector(windows, budget_limit=10.0, time_quota=5.0)
        assert not vector.within_budget
        assert not vector.within_quota

    def test_boundary_counts_as_within(self):
        windows = [_window(2.0, 10.0)]
        vector = criteria_vector(windows, budget_limit=20.0, time_quota=10.0)
        assert vector.within_budget
        assert vector.within_quota
