"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

import repro.cli
from repro import obs
from repro.cli import build_parser, main
from repro.core import SchedulingError


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.objective == "time"
        assert args.iterations == 1000
        assert args.rho == 1.0

    def test_figures_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures"])

    def test_figures_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "7"])

    def test_all_subcommands_have_handlers(self):
        parser = build_parser()
        extras = {
            "figures": ["--figure", "4"],
            "sweep": ["--parameter", "slot_count", "--values", "125"],
            "stats": ["t.jsonl"],
            "explain": ["t.jsonl", "--job", "j"],
            "profile": ["t.jsonl"],
        }
        for command in (
            "experiment", "figures", "example", "complexity", "vo", "report", "sweep",
            "stats", "explain", "profile",
        ):
            args = parser.parse_args([command] + extras.get(command, []))
            assert callable(args.handler)

    def test_sweep_requires_parameter_and_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--values", "1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--parameter", "slot_count"])


class TestCommands:
    def test_example_command_prints_gantt(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "cpu6" in out
        assert "alternatives" in out

    def test_example_command_alp(self, capsys):
        assert main(["example", "--algorithm", "alp"]) == 0
        out = capsys.readouterr().out
        assert "ALP" in out

    def test_experiment_command_small(self, capsys):
        assert main(["experiment", "--iterations", "12", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "alternatives per job" in out

    def test_experiment_workers_flag(self, capsys):
        assert (
            main(["experiment", "--iterations", "12", "--seed", "5", "--workers", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "alternatives per job" in out

    def test_experiment_rejects_zero_workers(self, capsys):
        assert (
            main(["experiment", "--iterations", "4", "--seed", "5", "--workers", "0"])
            == 2
        )
        assert "workers" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["experiment", "--iterations", "0"],
            ["experiment", "--iterations", "-3"],
            ["experiment", "--iterations", "4", "--workers", "-1"],
            ["experiment", "--iterations", "4", "--rho", "0"],
            ["experiment", "--iterations", "4", "--mtbf", "0"],
            ["experiment", "--iterations", "4", "--mtbf", "nan"],
            ["experiment", "--iterations", "4", "--mttr", "-2.5"],
            ["experiment", "--iterations", "4", "--mttr", "inf"],
            ["vo", "--mtbf", "0"],
            ["vo", "--mttr", "-1"],
            ["vo", "--max-pending", "0"],
        ],
    )
    def test_non_positive_parameters_exit_2_with_diagnosis(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "must be a positive" in err

    def test_resume_without_checkpoint_exits_2(self, capsys):
        assert main(["experiment", "--iterations", "4", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_experiment_cost_objective(self, capsys):
        assert (
            main(["experiment", "--objective", "cost", "--iterations", "12", "--seed", "5"])
            == 0
        )
        out = capsys.readouterr().out
        assert "Fig. 6" in out

    def test_figures_command(self, capsys):
        assert main(["figures", "--figure", "5", "--iterations", "12", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out

    def test_complexity_command(self, capsys):
        assert main(["complexity", "--sizes", "100", "200", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "backfill ms" in out

    def test_sweep_command(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--parameter", "slot_count",
                    "--values", "125",
                    "--iterations", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "slot_count" in out
        assert "time gain" in out

    def test_vo_command(self, capsys):
        assert main(["vo", "--until", "600", "--jobs", "4", "--nodes", "6"]) == 0
        out = capsys.readouterr().out
        assert "scheduled" in out
        assert "utilization" in out


class TestTelemetryOptions:
    @pytest.fixture(autouse=True)
    def _inert_telemetry(self):
        obs.disable()
        yield
        obs.disable()

    def test_metrics_flag_prints_summary(self, capsys):
        assert main(["experiment", "--iterations", "8", "--seed", "5", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "search.slots_scanned{algo=alp}" in out
        assert "search.slots_scanned{algo=amp}" in out
        assert "search.windows_found{algo=alp}" in out
        assert "search.windows_found{algo=amp}" in out
        assert "dp.table_cells" in out

    def test_trace_writes_parseable_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "vo.jsonl"
        assert (
            main(
                [
                    "vo", "--until", "400", "--jobs", "3", "--nodes", "6",
                    "--trace", str(trace),
                ]
            )
            == 0
        )
        lines = trace.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["kind"] == "meta"
        assert records[0]["format"] == obs.TRACE_FORMAT
        kinds = {record["kind"] for record in records}
        assert {"counter", "span"} <= kinds
        data = obs.read_trace(str(trace))
        assert data.metric_value("meta.iterations") >= 1

    def test_trace_replays_through_stats(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(["example", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "counters and gauges" in out
        assert "search.slots_scanned" in out
        assert "cli.example" in out

    def test_stats_missing_file_exits_nonzero(self, capsys):
        assert main(["stats", "/nonexistent/trace.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_truncated_trace_diagnosed_in_one_line(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(["example", "--trace", str(trace)]) == 0
        capsys.readouterr()
        # Chop the trailing record in half, as a mid-append SIGKILL would.
        text = trace.read_text()
        trace.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        assert main(["stats", str(trace)]) == 2
        err = capsys.readouterr().err
        assert "truncated trailing record" in err
        # One diagnostic line, no traceback.
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_stats_non_object_line_exits_2(self, capsys, tmp_path):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('"just a string"\n')
        assert main(["stats", str(trace)]) == 2
        err = capsys.readouterr().err
        assert "expected a JSON object" in err
        assert "Traceback" not in err

    def test_trace_unwritable_path_exits_nonzero(self, capsys):
        assert main(["example", "--trace", "/nonexistent-dir/t.jsonl"]) == 2
        assert "cannot write trace" in capsys.readouterr().err

    def test_telemetry_disabled_after_run(self, capsys):
        assert main(["example", "--metrics"]) == 0
        assert not obs.telemetry_enabled()

    def test_default_run_keeps_telemetry_off(self, capsys):
        assert main(["example"]) == 0
        assert not obs.telemetry_enabled()
        assert "telemetry summary" not in capsys.readouterr().out


class TestDecisionCommands:
    """The shard-aware trace commands: stats --merge, explain, profile."""

    @pytest.fixture(autouse=True)
    def _inert_telemetry(self):
        obs.disable()
        yield
        obs.disable()

    @pytest.fixture(scope="class")
    def shards(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("shards") / "run.jsonl"
        assert (
            main(
                [
                    "experiment", "--iterations", "6", "--seed", "7",
                    "--workers", "2", "--trace", str(base),
                ]
            )
            == 0
        )
        obs.disable()
        return [str(base.parent / f"run.w{worker}.jsonl") for worker in range(2)]

    def test_parallel_trace_prints_shard_hint(self, capsys, tmp_path):
        base = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "experiment", "--iterations", "4", "--seed", "7",
                    "--workers", "2", "--trace", str(base),
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "per-worker trace shards" in err
        assert "--merge" in err
        assert (tmp_path / "run.w0.jsonl").exists()
        assert (tmp_path / "run.w1.jsonl").exists()

    def test_stats_merge_renders_combined_summary(self, capsys, shards):
        assert main(["stats", "--merge"] + shards) == 0
        out = capsys.readouterr().out
        assert "counters and gauges" in out
        assert "search.slots_scanned" in out

    def test_stats_multiple_files_implies_merge(self, capsys, shards):
        assert main(["stats"] + shards) == 0
        assert "search.batches" in capsys.readouterr().out

    def test_stats_prometheus_from_merged_shards(self, capsys, shards):
        assert main(["stats", "--merge", "--prometheus"] + shards) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out
        assert "_bucket" in out

    def test_empty_trace_exits_2_with_one_line_diagnostic(self, capsys, tmp_path):
        trace = tmp_path / "empty.jsonl"
        telemetry = obs.configure()
        obs.write_trace(str(trace), telemetry)
        obs.disable()
        assert main(["stats", str(trace)]) == 2
        err = capsys.readouterr().err
        assert "no records" in err
        assert "REPRO_TELEMETRY" in err
        assert len(err.strip().splitlines()) == 1

    def test_explain_reproduces_decision_path(self, capsys, shards):
        assert main(["explain"] + shards + ["--job", "b1-j0"]) == 0
        out = capsys.readouterr().out
        assert "b1-j0" in out
        assert "alp.window" in out
        assert "records" in out

    def test_explain_iteration_filter_narrows_output(self, capsys, shards):
        assert (
            main(["explain"] + shards + ["--job", "b1-j0", "--iteration", "0"]) == 0
        )
        filtered = capsys.readouterr().out
        assert main(["explain"] + shards + ["--job", "b1-j0"]) == 0
        unfiltered = capsys.readouterr().out
        assert len(filtered) < len(unfiltered)

    def test_explain_unknown_job_notes_no_decisions(self, capsys, shards):
        assert main(["explain", shards[0], "--job", "ghost-job"]) == 0
        assert "no decisions" in capsys.readouterr().out

    def test_profile_renders_phase_shares(self, capsys, shards):
        assert main(["profile", "--merge"] + shards) == 0
        out = capsys.readouterr().out
        assert "phase1.scan" in out
        assert "%" in out


class TestErrorHandling:
    def test_scheduling_error_maps_to_exit_code_2(self, capsys, monkeypatch):
        def explode(args):
            raise SchedulingError("synthetic failure")

        monkeypatch.setattr(repro.cli, "_cmd_example", explode)
        assert main(["example"]) == 2
        assert "synthetic failure" in capsys.readouterr().err


class TestReportOutput:
    def test_output_writes_file(self, capsys, tmp_path):
        target = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "--iterations", "4", "--output", str(target)]) == 0
        out = capsys.readouterr().out
        assert str(target) in out
        assert "paper vs. measured" in target.read_text()

    def test_output_unwritable_path_exits_nonzero(self, capsys):
        assert (
            main(["report", "--iterations", "4", "--output", "/nonexistent-dir/r.md"])
            == 2
        )
        assert "cannot write report" in capsys.readouterr().err


class TestVoStatements:
    def test_statements_flag_prints_billing(self, capsys):
        assert (
            main(
                [
                    "vo", "--until", "600", "--jobs", "3", "--nodes", "6",
                    "--statements",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "owners' statement" in out
        assert "users' statement" in out
        assert "TOTAL" in out
