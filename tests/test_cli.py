"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.objective == "time"
        assert args.iterations == 1000
        assert args.rho == 1.0

    def test_figures_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures"])

    def test_figures_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "7"])

    def test_all_subcommands_have_handlers(self):
        parser = build_parser()
        extras = {
            "figures": ["--figure", "4"],
            "sweep": ["--parameter", "slot_count", "--values", "125"],
        }
        for command in (
            "experiment", "figures", "example", "complexity", "vo", "report", "sweep",
        ):
            args = parser.parse_args([command] + extras.get(command, []))
            assert callable(args.handler)

    def test_sweep_requires_parameter_and_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--values", "1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--parameter", "slot_count"])


class TestCommands:
    def test_example_command_prints_gantt(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "cpu6" in out
        assert "alternatives" in out

    def test_example_command_alp(self, capsys):
        assert main(["example", "--algorithm", "alp"]) == 0
        out = capsys.readouterr().out
        assert "ALP" in out

    def test_experiment_command_small(self, capsys):
        assert main(["experiment", "--iterations", "12", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "alternatives per job" in out

    def test_experiment_cost_objective(self, capsys):
        assert (
            main(["experiment", "--objective", "cost", "--iterations", "12", "--seed", "5"])
            == 0
        )
        out = capsys.readouterr().out
        assert "Fig. 6" in out

    def test_figures_command(self, capsys):
        assert main(["figures", "--figure", "5", "--iterations", "12", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out

    def test_complexity_command(self, capsys):
        assert main(["complexity", "--sizes", "100", "200", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "backfill ms" in out

    def test_sweep_command(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--parameter", "slot_count",
                    "--values", "125",
                    "--iterations", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "slot_count" in out
        assert "time gain" in out

    def test_vo_command(self, capsys):
        assert main(["vo", "--until", "600", "--jobs", "4", "--nodes", "6"]) == 0
        out = capsys.readouterr().out
        assert "scheduled" in out
        assert "utilization" in out


class TestVoStatements:
    def test_statements_flag_prints_billing(self, capsys):
        assert (
            main(
                [
                    "vo", "--until", "600", "--jobs", "3", "--nodes", "6",
                    "--statements",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "owners' statement" in out
        assert "users' statement" in out
        assert "TOTAL" in out
