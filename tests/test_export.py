"""Tests for result export (repro.sim.export)."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.core import Criterion
from repro.sim import (
    ExperimentConfig,
    ExperimentRunner,
    figure4,
    figure5,
    figure_to_dict,
    result_to_rows,
    samples_csv_text,
    summarize,
    summary_to_dict,
    write_json,
    write_samples_csv,
)
from repro.sim.export import CSV_FIELDS


@pytest.fixture(scope="module")
def result():
    config = ExperimentConfig(
        objective=Criterion.TIME, iterations=30, seed=2024, resolution=300
    )
    return ExperimentRunner(config).run()


class TestCsvExport:
    def test_rows_match_samples(self, result):
        rows = result_to_rows(result)
        assert len(rows) == result.counted
        for row, sample in zip(rows, result.samples):
            assert row["index"] == sample.index
            assert row["amp_mean_job_time"] == sample.amp.mean_job_time

    def test_csv_text_roundtrip(self, result):
        text = samples_csv_text(result)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == result.counted
        assert list(parsed[0].keys()) == CSV_FIELDS
        first = parsed[0]
        assert float(first["alp_mean_job_time"]) == pytest.approx(
            result.samples[0].alp.mean_job_time
        )

    def test_write_csv_file(self, result, tmp_path):
        path = write_samples_csv(result, tmp_path / "samples.csv")
        assert path.exists()
        assert path.read_text().startswith("index,")


class TestJsonExport:
    def test_summary_dict_is_json_ready(self, result):
        data = summary_to_dict(summarize(result))
        text = json.dumps(data)  # must not raise
        reloaded = json.loads(text)
        assert reloaded["objective"] == "time"
        assert reloaded["counted"] == result.counted
        assert set(reloaded["ratios"]) == {
            "amp_time_gain",
            "amp_cost_premium",
            "alternatives_factor",
        }

    def test_figure_dict_without_series(self, result):
        panel_a, _ = figure4(result)
        data = figure_to_dict(panel_a)
        assert data["name"] == "fig4a_time"
        assert set(data["measured"]) == {"ALP", "AMP"}
        assert "series" not in data

    def test_figure_dict_with_series(self, result):
        panel = figure5(result, first_n=5)
        data = figure_to_dict(panel)
        assert len(data["series"]["ALP"]) == min(5, result.counted)

    def test_write_json_file(self, result, tmp_path):
        path = write_json(summary_to_dict(summarize(result)), tmp_path / "summary.json")
        reloaded = json.loads(path.read_text())
        assert reloaded["attempted"] == 30
