"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.core import InvalidRequestError
from repro.sim import bar_chart, line_chart, table


class TestBarChart:
    def test_scales_to_maximum(self):
        text = bar_chart({"ALP": 50.0, "AMP": 25.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_title_and_unit(self):
        text = bar_chart({"x": 1.0}, title="Demo", unit="s")
        assert text.startswith("Demo")
        assert "1.00s" in text

    def test_empty_data(self):
        assert "(no data)" in bar_chart({})

    def test_all_zero_values(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "█" not in text

    def test_rejects_bad_width(self):
        with pytest.raises(InvalidRequestError):
            bar_chart({"a": 1.0}, width=0)


class TestLineChart:
    def test_contains_series_glyphs_and_legend(self):
        text = line_chart({"ALP": [1.0, 2.0, 3.0], "AMP": [3.0, 2.0, 1.0]}, width=20, height=5)
        assert "*" in text and "o" in text
        assert "* ALP" in text and "o AMP" in text

    def test_y_range_labels(self):
        text = line_chart({"s": [10.0, 20.0]}, width=10, height=4)
        assert "20.00" in text
        assert "10.00" in text

    def test_flat_series(self):
        text = line_chart({"s": [5.0, 5.0, 5.0]}, width=10, height=4)
        assert "(no data)" not in text

    def test_single_point_series(self):
        text = line_chart({"s": [5.0]}, width=10, height=4)
        assert "*" in text

    def test_empty(self):
        assert "(no data)" in line_chart({})

    def test_rejects_degenerate_grid(self):
        with pytest.raises(InvalidRequestError):
            line_chart({"s": [1.0]}, width=1, height=5)


class TestTable:
    def test_alignment_and_header(self):
        text = table(
            [["a", "1"], ["long-label", "22"]], header=["name", "value"]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_ragged_rows_padded(self):
        text = table([["a"], ["b", "2"]])
        assert len(text.splitlines()) == 2

    def test_empty(self):
        assert table([]) == "(empty table)"
