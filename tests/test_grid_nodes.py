"""Tests for repro.grid.node and repro.grid.cluster."""

from __future__ import annotations

import random

import pytest

from repro.core import InvalidRequestError
from repro.core.pricing import ExponentialPricing
from repro.grid import Cluster, ClusterSpec, ComputeNode, total_income


class TestComputeNode:
    def test_delegated_attributes(self):
        node = ComputeNode("cpu1", performance=2.0, price=3.5)
        assert node.name == "cpu1"
        assert node.performance == 2.0
        assert node.price == 3.5

    def test_vacant_slots_reflect_occupancy(self):
        node = ComputeNode("cpu1")
        node.run_local_job(0.0, 50.0, "p1")
        slots = node.vacant_slots(0.0, 200.0)
        assert [(slot.start, slot.end) for slot in slots] == [(50.0, 200.0)]
        assert slots[0].resource == node.resource
        assert slots[0].price == node.price

    def test_min_length_suppresses_fragments(self):
        node = ComputeNode("cpu1")
        node.run_local_job(10.0, 200.0)
        assert node.vacant_slots(0.0, 200.0, min_length=20.0) == []
        assert len(node.vacant_slots(0.0, 200.0, min_length=5.0)) == 1
        with pytest.raises(InvalidRequestError):
            node.vacant_slots(0.0, 200.0, min_length=-1.0)

    def test_reservation_lifecycle(self):
        node = ComputeNode("cpu1")
        node.reserve_for("jobA", 10.0, 30.0)
        node.reserve_for("jobA", 50.0, 60.0)
        node.reserve_for("jobB", 70.0, 80.0)
        assert node.cancel_reservations("jobA") == 2
        spans = [(iv.start, iv.end) for iv in node.schedule]
        assert spans == [(70.0, 80.0)]

    def test_local_share(self):
        node = ComputeNode("cpu1")
        node.run_local_job(0.0, 30.0)
        node.reserve_for("jobA", 50.0, 60.0)
        assert node.local_share(0.0, 100.0) == pytest.approx(30.0 / 40.0)

    def test_local_share_idle_node(self):
        assert ComputeNode("cpu1").local_share(0.0, 100.0) == 0.0

    def test_income_counts_only_reservations(self):
        node = ComputeNode("cpu1", price=2.0)
        node.run_local_job(0.0, 50.0)
        node.reserve_for("jobA", 60.0, 80.0)
        assert node.income(0.0, 100.0) == pytest.approx(40.0)

    def test_total_income_helper(self):
        a = ComputeNode("a", price=1.0)
        b = ComputeNode("b", price=3.0)
        a.reserve_for("j", 0.0, 10.0)
        b.reserve_for("j", 0.0, 10.0)
        assert total_income([a, b], 0.0, 100.0) == pytest.approx(40.0)


class TestClusterSpec:
    def test_validation(self):
        with pytest.raises(InvalidRequestError):
            ClusterSpec("c", node_count=0)
        with pytest.raises(InvalidRequestError):
            ClusterSpec("c", node_count=2, performance_range=(3.0, 1.0))
        with pytest.raises(InvalidRequestError):
            ClusterSpec("c", node_count=2, performance_range=(0.0, 1.0))

    def test_build_samples_within_ranges(self):
        spec = ClusterSpec(
            "alpha",
            node_count=20,
            performance_range=(1.0, 3.0),
            pricing=ExponentialPricing(),
        )
        cluster = spec.build(random.Random(1))
        assert len(cluster) == 20
        for node in cluster:
            assert 1.0 <= node.performance <= 3.0
            low, high = spec.pricing.bounds(node.performance)
            assert low <= node.price <= high
            assert node.name.startswith("alpha-n")

    def test_build_deterministic_under_seed(self):
        spec = ClusterSpec("alpha", node_count=5)
        one = spec.build(random.Random(7))
        two = spec.build(random.Random(7))
        assert [n.performance for n in one] == [n.performance for n in two]
        assert [n.price for n in one] == [n.price for n in two]


class TestCluster:
    def test_rejects_empty(self):
        with pytest.raises(InvalidRequestError):
            Cluster("empty", [])

    def test_container_protocol(self):
        nodes = [ComputeNode(f"n{i}") for i in range(3)]
        cluster = Cluster("c", nodes)
        assert len(cluster) == 3
        assert cluster[0] is nodes[0]
        assert list(cluster) == nodes
        assert cluster.nodes == tuple(nodes)

    def test_utilization_mean(self):
        busy = ComputeNode("busy")
        busy.run_local_job(0.0, 100.0)
        idle = ComputeNode("idle")
        cluster = Cluster("c", [busy, idle])
        assert cluster.utilization(0.0, 100.0) == pytest.approx(0.5)

    def test_income_sums_nodes(self):
        a = ComputeNode("a", price=2.0)
        a.reserve_for("j", 0.0, 10.0)
        b = ComputeNode("b", price=1.0)
        cluster = Cluster("c", [a, b])
        assert cluster.income(0.0, 100.0) == pytest.approx(20.0)
