"""Regression pins for the RPR102 typed-error sweep.

Every ``raise ValueError`` reachable from the public API became a typed
error from :mod:`repro.core.errors`.  These tests pin each migrated
site to its new type — and, separately, pin the compatibility contract:
the new types still *are* ``ValueError``, so pre-sweep callers catching
the builtin keep working (the existing ``pytest.raises(ValueError)``
pins across the suite double as proof).
"""

from __future__ import annotations

import pytest

from repro.core import ResourceRequest, Slot
from repro.core.alp import ForwardScan
from repro.core.amp import cheapest_subset
from repro.core.errors import (
    InvalidRequestError,
    SchedulingError,
    TelemetryError,
    TelemetryUsageError,
)
from repro.obs.decisions import DecisionLog
from repro.obs.events import JsonlSink, RingBuffer
from repro.obs.metrics import Counter, Histogram
from repro.sim.stats import merge_results
from tests.conftest import make_resource


class TestHierarchy:
    def test_telemetry_usage_error_is_both_families(self):
        # Catchable as the library base class *and* as the builtin the
        # sites used to raise — the sweep must not break either caller.
        assert issubclass(TelemetryUsageError, TelemetryError)
        assert issubclass(TelemetryUsageError, SchedulingError)
        assert issubclass(TelemetryUsageError, ValueError)

    def test_invalid_request_error_is_both_families(self):
        assert issubclass(InvalidRequestError, SchedulingError)
        assert issubclass(InvalidRequestError, ValueError)


class TestObservabilitySites:
    def test_counter_decrease(self):
        with pytest.raises(TelemetryUsageError):
            Counter("jobs").increment(-1.0)

    def test_histogram_unsorted_bounds(self):
        with pytest.raises(TelemetryUsageError):
            Histogram("lat", bounds=(2.0, 1.0))

    def test_histogram_quantile_out_of_range(self):
        with pytest.raises(TelemetryUsageError):
            Histogram("lat").quantile(1.5)

    def test_decision_log_capacity(self):
        with pytest.raises(TelemetryUsageError):
            DecisionLog(max_records=0)

    def test_ring_buffer_capacity(self):
        with pytest.raises(TelemetryUsageError):
            RingBuffer(capacity=0)

    def test_closed_sink_emit(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "events.jsonl"))
        sink.close()
        with pytest.raises(TelemetryUsageError):
            sink.emit({"kind": "late"})


class TestCoreSites:
    def test_forward_scan_backwards(self):
        scan = ForwardScan(ResourceRequest(node_count=1, volume=10.0))
        scan.advance_to(50.0)
        with pytest.raises(InvalidRequestError):
            scan.advance_to(40.0)

    def test_cheapest_subset_short(self):
        request = ResourceRequest(node_count=3, volume=10.0)
        with pytest.raises(InvalidRequestError):
            cheapest_subset([Slot(make_resource(), 0.0, 100.0)], request)

    def test_merge_results_empty(self):
        with pytest.raises(InvalidRequestError):
            merge_results([])
