"""Cross-worker trace invariance and checkpoint trace propagation.

The contract: a traced experiment writes one shard per worker, and the
*canonical* form of the merged shards — everything except wall-clock
stamps, perf-counter durations, and worker ids — is byte-identical to
the canonical serial trace of the same run.  Decision records, being
wall-clock-free and sequence-numbered per iteration, survive the
round-trip exactly.  A ``DurableMetascheduler`` snapshot additionally
persists the run's trace context, so a restore after a crash rejoins
the same logical trace.
"""

from __future__ import annotations

import pytest

from repro.core import Criterion, SlotSearchAlgorithm, find_alternatives
from repro.grid import Metascheduler, RetryPolicy
from repro.grid.checkpoint import DurableMetascheduler
from repro.obs import (
    TraceContext,
    canonical_trace,
    merge_trace_files,
    read_trace,
    write_trace,
)
from repro.obs.telemetry import configure, disable, get_telemetry, install
from repro.sim import ExperimentConfig, ParallelRunner
from repro.sim.experiment import trace_shard_path
from tests.conftest import make_random_batch, make_random_slot_list
from tests.test_checkpoint import build_meta, make_job

ITERATIONS = 6
SEED = 4242


@pytest.fixture(autouse=True)
def _restore_telemetry():
    previous = get_telemetry()
    yield
    install(previous)


def traced_run(tmp_path, workers: int, search_shards: int = 1):
    config = ExperimentConfig(
        objective=Criterion.TIME,
        iterations=ITERATIONS,
        seed=SEED,
        search_shards=search_shards,
    )
    tmp_path.mkdir(parents=True, exist_ok=True)
    base = tmp_path / f"run{workers}.jsonl"
    result = ParallelRunner(config, workers=workers).run(trace_base=base)
    shards = [
        str(trace_shard_path(base, worker))
        for worker in range(min(workers, ITERATIONS))
    ]
    return result, merge_trace_files(shards)


class TestCrossWorkerInvariance:
    def test_workers_4_canonically_identical_to_serial(self, tmp_path):
        serial_result, serial_trace = traced_run(tmp_path / "serial", 1)
        parallel_result, parallel_trace = traced_run(tmp_path / "parallel", 4)
        assert parallel_result == serial_result
        assert canonical_trace(parallel_trace) == canonical_trace(serial_trace)

    def test_shards_share_the_seed_derived_trace_id(self, tmp_path):
        _, merged = traced_run(tmp_path, 3)
        assert merged.meta.get("trace_id") == TraceContext.derive(SEED).trace_id
        assert merged.meta.get("workers") == [0, 1, 2]

    def test_decisions_are_recorded_and_iteration_ordered(self, tmp_path):
        _, merged = traced_run(tmp_path, 2)
        assert merged.decisions
        iterations = [record["iteration"] for record in merged.decisions]
        assert iterations == sorted(iterations)
        assert set(iterations) == set(range(ITERATIONS))

    def test_trace_base_refuses_checkpoint(self, tmp_path):
        from repro.core.errors import InvalidRequestError

        config = ExperimentConfig(
            objective=Criterion.TIME, iterations=ITERATIONS, seed=SEED
        )
        with pytest.raises(InvalidRequestError, match="checkpoint"):
            ParallelRunner(config, workers=2).run(
                trace_base=tmp_path / "t.jsonl",
                checkpoint=tmp_path / "ck.jsonl",
            )

    def test_shard_path_naming(self):
        assert trace_shard_path("out/trace.jsonl", 3).name == "trace.w3.jsonl"
        assert trace_shard_path("out/trace", 0).name == "trace.w0.jsonl"


class TestCheckpointTracePropagation:
    def run_workload(self, durable: DurableMetascheduler) -> None:
        for index in range(3):
            durable.submit(make_job(index), at_time=index * 10.0)
        durable.run(100.0)

    def test_restore_reattaches_snapshot_context(self, tmp_path):
        context = TraceContext.derive(SEED).child("metascheduler")
        configure(context=context)
        meta = build_meta(recovery=RetryPolicy())
        durable = DurableMetascheduler(meta, tmp_path, fsync=False)
        self.run_workload(durable)
        durable.snapshot()
        # Fresh process: telemetry enabled but context-less until restore.
        configure()
        assert get_telemetry().context is None
        DurableMetascheduler.restore(tmp_path, fsync=False)
        assert get_telemetry().context == context
        disable()

    def test_restore_keeps_existing_context(self, tmp_path):
        configure(context=TraceContext.derive(SEED))
        meta = build_meta()
        durable = DurableMetascheduler(meta, tmp_path, fsync=False)
        self.run_workload(durable)
        durable.snapshot()
        own = TraceContext.derive(99, worker=1)
        configure(context=own)
        DurableMetascheduler.restore(tmp_path, fsync=False)
        assert get_telemetry().context == own
        disable()

    def test_disabled_telemetry_writes_no_context(self, tmp_path):
        disable()
        meta = build_meta()
        durable = DurableMetascheduler(meta, tmp_path, fsync=False)
        self.run_workload(durable)
        durable.snapshot()
        from repro.grid.checkpoint import load_snapshot

        snapshot = load_snapshot(durable.snapshot_path)
        assert "trace_context" not in snapshot


class TestShardedSearchTraceInvariance:
    """Partition-parallel search: same canonical trace as the serial path.

    The sharded instrumented search emits exactly the serial indexed
    surface (span attributes, counters, decision records — including the
    summed per-shard ``hint_skips``) plus per-shard ``phase.seconds``
    timings, which :func:`canonical_trace` strips along with every other
    perf-counter metric.  So the canonical forms must compare equal for
    any shard count and for either worker mode.
    """

    def _canonical_search_trace(
        self, tmp_path, name, algorithm, *, shards=None, processes=None
    ):
        configure(context=TraceContext.derive(SEED))
        slots = make_random_slot_list(7, count=40)
        batch = make_random_batch(7)
        find_alternatives(
            slots,
            batch,
            algorithm,
            use_index=True,
            shards=shards,
            shard_processes=processes,
        )
        path = tmp_path / f"{name}.jsonl"
        write_trace(str(path))
        disable()
        return canonical_trace(read_trace(str(path)))

    @pytest.mark.parametrize(
        "algorithm",
        [SlotSearchAlgorithm.ALP, SlotSearchAlgorithm.AMP],
        ids=["alp", "amp"],
    )
    def test_sharded_find_canonically_identical_to_serial(self, tmp_path, algorithm):
        serial = self._canonical_search_trace(tmp_path, "serial", algorithm)
        for shards in (2, 4):
            sharded = self._canonical_search_trace(
                tmp_path, f"sharded{shards}", algorithm, shards=shards
            )
            assert sharded == serial, f"canonical divergence at shards={shards}"

    def test_process_mode_trace_identical_to_serial(self, tmp_path):
        serial = self._canonical_search_trace(
            tmp_path, "serial", SlotSearchAlgorithm.AMP
        )
        sharded = self._canonical_search_trace(
            tmp_path, "procs", SlotSearchAlgorithm.AMP, shards=3, processes=True
        )
        assert sharded == serial

    def test_sharded_experiment_matches_unsharded_run(self, tmp_path):
        """End to end through the parallel engine: a traced experiment
        with ``search_shards=2`` produces the same series output as the
        unsharded run, and its merged decision stream stays
        (iteration, seq)-ordered under the seed-derived trace id.

        The merged *traces* are not compared here: a shards=1 traced run
        instruments the naive reference pipeline (a deliberately
        different surface — no ``indexed`` attribute, per-slot scan
        counters), while the canonical equality of the sharded trace
        against the serial *indexed* trace is pinned by the
        find-level tests above.
        """
        plain_result, _ = traced_run(tmp_path / "plain", 2)
        sharded_result, sharded_trace = traced_run(
            tmp_path / "sharded", 2, search_shards=2
        )
        # Everything but the config (which records the shard count).
        assert sharded_result.samples == plain_result.samples
        assert sharded_result.attempted == plain_result.attempted
        assert sharded_result.dropped_uncovered == plain_result.dropped_uncovered
        assert sharded_result.dropped_infeasible == plain_result.dropped_infeasible
        assert sharded_trace.meta.get("trace_id") == TraceContext.derive(SEED).trace_id
        keys = [
            (record["iteration"], record["seq"]) for record in sharded_trace.decisions
        ]
        assert keys and keys == sorted(keys)
