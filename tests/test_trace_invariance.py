"""Cross-worker trace invariance and checkpoint trace propagation.

The contract: a traced experiment writes one shard per worker, and the
*canonical* form of the merged shards — everything except wall-clock
stamps, perf-counter durations, and worker ids — is byte-identical to
the canonical serial trace of the same run.  Decision records, being
wall-clock-free and sequence-numbered per iteration, survive the
round-trip exactly.  A ``DurableMetascheduler`` snapshot additionally
persists the run's trace context, so a restore after a crash rejoins
the same logical trace.
"""

from __future__ import annotations

import pytest

from repro.core import Criterion
from repro.grid import Metascheduler, RetryPolicy
from repro.grid.checkpoint import DurableMetascheduler
from repro.obs import TraceContext, canonical_trace, merge_trace_files
from repro.obs.telemetry import configure, disable, get_telemetry, install
from repro.sim import ExperimentConfig, ParallelRunner
from repro.sim.experiment import trace_shard_path
from tests.test_checkpoint import build_meta, make_job

ITERATIONS = 6
SEED = 4242


@pytest.fixture(autouse=True)
def _restore_telemetry():
    previous = get_telemetry()
    yield
    install(previous)


def traced_run(tmp_path, workers: int):
    config = ExperimentConfig(
        objective=Criterion.TIME, iterations=ITERATIONS, seed=SEED
    )
    tmp_path.mkdir(parents=True, exist_ok=True)
    base = tmp_path / f"run{workers}.jsonl"
    result = ParallelRunner(config, workers=workers).run(trace_base=base)
    shards = [
        str(trace_shard_path(base, worker))
        for worker in range(min(workers, ITERATIONS))
    ]
    return result, merge_trace_files(shards)


class TestCrossWorkerInvariance:
    def test_workers_4_canonically_identical_to_serial(self, tmp_path):
        serial_result, serial_trace = traced_run(tmp_path / "serial", 1)
        parallel_result, parallel_trace = traced_run(tmp_path / "parallel", 4)
        assert parallel_result == serial_result
        assert canonical_trace(parallel_trace) == canonical_trace(serial_trace)

    def test_shards_share_the_seed_derived_trace_id(self, tmp_path):
        _, merged = traced_run(tmp_path, 3)
        assert merged.meta.get("trace_id") == TraceContext.derive(SEED).trace_id
        assert merged.meta.get("workers") == [0, 1, 2]

    def test_decisions_are_recorded_and_iteration_ordered(self, tmp_path):
        _, merged = traced_run(tmp_path, 2)
        assert merged.decisions
        iterations = [record["iteration"] for record in merged.decisions]
        assert iterations == sorted(iterations)
        assert set(iterations) == set(range(ITERATIONS))

    def test_trace_base_refuses_checkpoint(self, tmp_path):
        from repro.core.errors import InvalidRequestError

        config = ExperimentConfig(
            objective=Criterion.TIME, iterations=ITERATIONS, seed=SEED
        )
        with pytest.raises(InvalidRequestError, match="checkpoint"):
            ParallelRunner(config, workers=2).run(
                trace_base=tmp_path / "t.jsonl",
                checkpoint=tmp_path / "ck.jsonl",
            )

    def test_shard_path_naming(self):
        assert trace_shard_path("out/trace.jsonl", 3).name == "trace.w3.jsonl"
        assert trace_shard_path("out/trace", 0).name == "trace.w0.jsonl"


class TestCheckpointTracePropagation:
    def run_workload(self, durable: DurableMetascheduler) -> None:
        for index in range(3):
            durable.submit(make_job(index), at_time=index * 10.0)
        durable.run(100.0)

    def test_restore_reattaches_snapshot_context(self, tmp_path):
        context = TraceContext.derive(SEED).child("metascheduler")
        configure(context=context)
        meta = build_meta(recovery=RetryPolicy())
        durable = DurableMetascheduler(meta, tmp_path, fsync=False)
        self.run_workload(durable)
        durable.snapshot()
        # Fresh process: telemetry enabled but context-less until restore.
        configure()
        assert get_telemetry().context is None
        DurableMetascheduler.restore(tmp_path, fsync=False)
        assert get_telemetry().context == context
        disable()

    def test_restore_keeps_existing_context(self, tmp_path):
        configure(context=TraceContext.derive(SEED))
        meta = build_meta()
        durable = DurableMetascheduler(meta, tmp_path, fsync=False)
        self.run_workload(durable)
        durable.snapshot()
        own = TraceContext.derive(99, worker=1)
        configure(context=own)
        DurableMetascheduler.restore(tmp_path, fsync=False)
        assert get_telemetry().context == own
        disable()

    def test_disabled_telemetry_writes_no_context(self, tmp_path):
        disable()
        meta = build_meta()
        durable = DurableMetascheduler(meta, tmp_path, fsync=False)
        self.run_workload(durable)
        durable.snapshot()
        from repro.grid.checkpoint import load_snapshot

        snapshot = load_snapshot(durable.snapshot_path)
        assert "trace_context" not in snapshot
