"""Tests for the whole-batch co-scheduling strategies (future work §7)."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Batch,
    BatchStrategy,
    InvalidRequestError,
    Job,
    Resource,
    ResourceRequest,
    Slot,
    SlotList,
    SlotSearchAlgorithm,
    coallocate_batch,
)

from tests.conftest import make_resource, make_uniform_slots


def _batch(*requests: ResourceRequest) -> Batch:
    return Batch(
        Job(request, name=f"j{i}", priority=i) for i, request in enumerate(requests)
    )


class TestSequentialStrategy:
    def test_matches_priority_order(self):
        slots = make_uniform_slots(2, length=200.0, price=2.0)
        batch = _batch(
            ResourceRequest(1, 50.0, max_price=3.0),
            ResourceRequest(1, 50.0, max_price=3.0),
        )
        assignment = coallocate_batch(slots, batch, strategy=BatchStrategy.SEQUENTIAL)
        assert assignment.order == ["j0", "j1"]
        assert not assignment.postponed

    def test_postpones_unplaceable(self):
        slots = make_uniform_slots(1, length=60.0, price=2.0)
        batch = _batch(
            ResourceRequest(1, 60.0, max_price=3.0),
            ResourceRequest(1, 60.0, max_price=3.0),
        )
        assignment = coallocate_batch(slots, batch, strategy=BatchStrategy.SEQUENTIAL)
        assert [job.name for job in assignment.postponed] == ["j1"]

    def test_input_untouched(self):
        slots = make_uniform_slots(2, length=200.0, price=2.0)
        before = list(slots)
        coallocate_batch(slots, _batch(ResourceRequest(1, 50.0, max_price=3.0)))
        assert list(slots) == before


class TestEarliestFirstStrategy:
    def test_reorders_to_avoid_head_of_line_blocking(self):
        # j0 (priority 0) needs both nodes but only after t=100; j1 fits
        # immediately on node b.  SEQUENTIAL places j0 first anyway;
        # EARLIEST_FIRST lets j1 jump the queue without delaying j0.
        a = Slot(make_resource("a", price=2.0), 100.0, 400.0)
        b = Slot(make_resource("b", price=2.0), 0.0, 400.0)
        slots = SlotList([a, b])
        batch = _batch(
            ResourceRequest(2, 50.0, max_price=3.0),
            ResourceRequest(1, 50.0, max_price=3.0),
        )
        assignment = coallocate_batch(
            slots, batch, strategy=BatchStrategy.EARLIEST_FIRST
        )
        assert assignment.order == ["j1", "j0"]
        windows = {job.name: window for job, window in assignment.windows.items()}
        assert windows["j1"].start == 0.0
        assert windows["j0"].start == 100.0

    def test_earliest_first_never_starts_later_in_total(self):
        # On identical inputs the sum of start times under EARLIEST_FIRST
        # is never worse than SEQUENTIAL when both place all jobs.
        rng = random.Random(5)
        for _ in range(10):
            slots = SlotList(
                Slot(
                    Resource(f"n{i}", performance=1.0, price=2.0),
                    rng.uniform(0, 100),
                    rng.uniform(150, 400),
                )
                for i in range(6)
            )
            batch = _batch(
                *(
                    ResourceRequest(rng.randint(1, 2), rng.uniform(30, 80), max_price=3.0)
                    for _ in range(3)
                )
            )
            sequential = coallocate_batch(slots, batch, strategy=BatchStrategy.SEQUENTIAL)
            earliest = coallocate_batch(
                slots, batch, strategy=BatchStrategy.EARLIEST_FIRST
            )
            if sequential.postponed or earliest.postponed:
                continue
            first_sequential = min(w.start for w in sequential.windows.values())
            first_earliest = min(w.start for w in earliest.windows.values())
            assert first_earliest <= first_sequential + 1e-9


class TestCheapestFirstStrategy:
    def test_prefers_cheap_commitments_first(self):
        cheap = Slot(make_resource("cheap", price=1.0), 0.0, 300.0)
        dear = Slot(make_resource("dear", price=4.0), 0.0, 300.0)
        slots = SlotList([cheap, dear])
        batch = _batch(
            ResourceRequest(1, 50.0, max_price=5.0),
            ResourceRequest(1, 50.0, max_price=5.0),
        )
        assignment = coallocate_batch(
            slots, batch, strategy=BatchStrategy.CHEAPEST_FIRST
        )
        first = assignment.windows[batch[int(assignment.order[0][1])]]
        assert first.resources()[0].name == "cheap"


class TestAssignmentMetrics:
    def test_totals_and_makespan(self):
        slots = make_uniform_slots(1, length=200.0, price=2.0)
        batch = _batch(
            ResourceRequest(1, 50.0, max_price=3.0),
            ResourceRequest(1, 30.0, max_price=3.0),
        )
        assignment = coallocate_batch(slots, batch)
        assert assignment.total_time == pytest.approx(80.0)
        assert assignment.total_cost == pytest.approx(2.0 * 80.0)
        assert assignment.makespan == pytest.approx(80.0)

    def test_empty_batch(self):
        assignment = coallocate_batch(make_uniform_slots(1), Batch())
        assert assignment.makespan == 0.0
        assert assignment.total_time == 0.0

    def test_invalid_strategy(self):
        with pytest.raises(InvalidRequestError):
            coallocate_batch(
                make_uniform_slots(1),
                _batch(ResourceRequest(1, 10.0)),
                strategy="greedy",  # type: ignore[arg-type]
            )


# --------------------------------------------------------------------- #
# Property: all strategies produce valid, disjoint assignments          #
# --------------------------------------------------------------------- #


def _random_environment(seed: int):
    rng = random.Random(seed)
    slots = []
    start = 0.0
    for i in range(rng.randint(12, 25)):
        if rng.random() > 0.4:
            start += rng.uniform(0.0, 10.0)
        node = Resource(
            f"n{i}", performance=rng.uniform(1.0, 3.0), price=rng.uniform(1.0, 6.0)
        )
        slots.append(Slot(node, start, start + rng.uniform(50.0, 300.0)))
    requests = [
        ResourceRequest(
            node_count=rng.randint(1, 3),
            volume=rng.uniform(30.0, 120.0),
            min_performance=rng.uniform(1.0, 2.0),
            max_price=rng.uniform(2.0, 6.0),
        )
        for _ in range(rng.randint(2, 4))
    ]
    return SlotList(slots), Batch(
        Job(request, priority=i) for i, request in enumerate(requests)
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    strategy=st.sampled_from(list(BatchStrategy)),
    algorithm=st.sampled_from(list(SlotSearchAlgorithm)),
)
def test_strategy_invariants(seed, strategy, algorithm):
    slots, batch = _random_environment(seed)
    assignment = coallocate_batch(slots, batch, algorithm, strategy=strategy)
    windows = list(assignment.windows.values())
    # Every job is either scheduled or postponed, never both.
    scheduled = set(job.uid for job in assignment.windows)
    postponed = set(job.uid for job in assignment.postponed)
    assert scheduled.isdisjoint(postponed)
    assert scheduled | postponed == {job.uid for job in batch}
    # Windows are valid and pairwise disjoint.
    for job, window in assignment.windows.items():
        budget = job.request.budget if algorithm is SlotSearchAlgorithm.AMP else None
        assert window.satisfies(job.request, budget=budget)
    for first, second in itertools.combinations(windows, 2):
        assert not first.intersects(second)
    # Commitment order names exactly the scheduled jobs.
    assert sorted(assignment.order) == sorted(
        job.name for job in assignment.windows
    )
