"""Tests for the backward-run DP optimizer (repro.core.optimize)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Criterion,
    InfeasibleConstraintError,
    Job,
    OptimizationError,
    ResourceRequest,
    Slot,
    TaskAllocation,
    Window,
)
from repro.core.optimize import (
    brute_force,
    minimize_cost,
    minimize_time,
    optimize,
    time_quota,
    vo_budget,
)

from tests.conftest import make_resource


def _window(price: float, volume: float, start: float = 0.0) -> Window:
    """A single-slot window with cost = price*volume and time = volume."""
    node = make_resource(price=price)
    slot = Slot(node, start, start + volume)
    request = ResourceRequest(node_count=1, volume=volume)
    return Window(request, [TaskAllocation(slot, start, start + volume)])


def _job(name: str) -> Job:
    return Job(ResourceRequest(1, 10.0), name=name)


def _alts(spec: dict[str, list[tuple[float, float]]]) -> dict[Job, list[Window]]:
    """Build an alternatives mapping from {job: [(price, volume), ...]}."""
    mapping: dict[Job, list[Window]] = {}
    cursor = 0.0
    for name, pairs in spec.items():
        windows = []
        for price, volume in pairs:
            windows.append(_window(price, volume, start=cursor))
            cursor += volume + 1.0
        mapping[_job(name)] = windows
    return mapping


class TestTimeQuota:
    def test_formula_2_with_floor(self):
        # Job with 3 alternatives of times 10, 11, 14: one floor per job,
        # applied to the mean: T* = floor((10 + 11 + 14) / 3) = 11.  The
        # buggy per-window flooring gave 3 + 3 + 4 = 10.
        alts = _alts({"a": [(1.0, 10.0), (1.0, 11.0), (1.0, 14.0)]})
        assert time_quota(alts) == pytest.approx(11.0)

    def test_floor_applies_once_per_job(self):
        # Regression for the per-window floor bug: three windows of
        # length 1 must give quota floor(3/3) = 1, not 3*floor(1/3) = 0
        # (a zero quota made every such iteration infeasible).
        alts = _alts({"a": [(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]})
        assert time_quota(alts) == pytest.approx(1.0)

    def test_sums_over_jobs(self):
        alts = _alts({"a": [(1.0, 10.0)], "b": [(1.0, 20.0)]})
        # Single alternative: floor(t/1) = t.
        assert time_quota(alts) == pytest.approx(30.0)

    def test_rejects_uncovered_job(self):
        alts = _alts({"a": [(1.0, 10.0)]})
        alts[_job("empty")] = []
        with pytest.raises(OptimizationError):
            time_quota(alts)


class TestVoBudget:
    def test_formula_3_maximizes_income(self):
        # Two jobs, quota 30.  Feasible combos (times sum <= 30):
        # (10,20): costs 10+60=70 ; (10,10): 10+40=50 ; (20,10): 30+40=70.
        # Max income = 70.
        alts = _alts(
            {
                "a": [(1.0, 10.0), (1.5, 20.0)],
                "b": [(3.0, 20.0), (4.0, 10.0)],
            }
        )
        budget = vo_budget(alts, quota=30.0, resolution=30)
        assert budget == pytest.approx(70.0)

    def test_default_quota_from_formula_2(self):
        alts = _alts({"a": [(2.0, 10.0)]})
        # T* = 10, single combo cost 20.
        assert vo_budget(alts) == pytest.approx(20.0)

    def test_infeasible_quota_raises(self):
        alts = _alts({"a": [(1.0, 50.0)]})
        with pytest.raises(InfeasibleConstraintError):
            vo_budget(alts, quota=10.0, resolution=100)


class TestOptimize:
    def test_minimize_time_under_budget(self):
        # Fast alternative is pricey; budget decides which is picked.
        alts = _alts({"a": [(10.0, 10.0), (1.0, 30.0)]})  # costs 100, 30
        rich = minimize_time(alts, budget_limit=100.0, resolution=100)
        assert rich.total_time == pytest.approx(10.0)
        poor = minimize_time(alts, budget_limit=50.0, resolution=100)
        assert poor.total_time == pytest.approx(30.0)

    def test_minimize_cost_under_quota(self):
        alts = _alts({"a": [(10.0, 10.0), (1.0, 30.0)]})
        tight = minimize_cost(alts, quota=15.0, resolution=100)
        assert tight.total_cost == pytest.approx(100.0)
        loose = minimize_cost(alts, quota=30.0, resolution=100)
        assert loose.total_cost == pytest.approx(30.0)

    def test_combination_exposes_means(self):
        alts = _alts({"a": [(1.0, 10.0)], "b": [(1.0, 30.0)]})
        combo = minimize_time(alts, budget_limit=100.0, resolution=100)
        assert combo.mean_job_time == pytest.approx(20.0)
        assert combo.mean_job_cost == pytest.approx(20.0)

    def test_two_job_interaction(self):
        # Budget 70 forces exactly one job to take its cheap slow option.
        alts = _alts(
            {
                "a": [(5.0, 10.0), (1.0, 40.0)],  # costs 50, 40
                "b": [(3.0, 10.0), (1.0, 25.0)],  # costs 30, 25
            }
        )
        combo = minimize_time(alts, budget_limit=75.0, resolution=75)
        # (50+25)=75 gives T=35; (40+30)=70 gives T=50; pick T=35.
        assert combo.total_time == pytest.approx(35.0)
        assert combo.total_cost == pytest.approx(75.0)

    def test_infeasible_raises_with_diagnostics(self):
        alts = _alts({"a": [(10.0, 10.0)]})
        with pytest.raises(InfeasibleConstraintError) as excinfo:
            minimize_time(alts, budget_limit=50.0, resolution=100)
        assert excinfo.value.limit == 50.0
        assert excinfo.value.best == pytest.approx(100.0)

    def test_empty_alternatives_mapping(self):
        combo = optimize({}, Criterion.TIME, 100.0)
        assert combo.selection == {}
        assert combo.total_time == 0.0

    def test_uncovered_job_raises(self):
        alts = {_job("empty"): []}
        with pytest.raises(OptimizationError):
            optimize(alts, Criterion.TIME, 100.0)

    def test_selection_windows_come_from_alternatives(self):
        alts = _alts({"a": [(1.0, 10.0), (2.0, 20.0)], "b": [(1.0, 5.0)]})
        combo = minimize_time(alts, budget_limit=100.0, resolution=100)
        for job, window in combo.selection.items():
            assert window in alts[job]


class TestBruteForce:
    def test_matches_known_optimum(self):
        alts = _alts({"a": [(10.0, 10.0), (1.0, 30.0)]})
        combo = brute_force(alts, Criterion.TIME, 50.0)
        assert combo is not None
        assert combo.total_time == pytest.approx(30.0)

    def test_returns_none_when_infeasible(self):
        alts = _alts({"a": [(10.0, 10.0)]})
        assert brute_force(alts, Criterion.TIME, 50.0) is None

    def test_space_cap(self):
        alts = _alts({chr(97 + i): [(1.0, 10.0)] * 9 for i in range(8)})
        with pytest.raises(OptimizationError):
            brute_force(alts, Criterion.TIME, 1e9, max_combinations=1000)


# --------------------------------------------------------------------- #
# DP vs brute force (exact on integer instances)                        #
# --------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_dp_matches_brute_force_minimize_time(seed):
    rng = random.Random(seed)
    spec = {
        f"job{i}": [
            (float(rng.randint(1, 6)), float(rng.randint(5, 40)))
            for _ in range(rng.randint(1, 4))
        ]
        for i in range(rng.randint(1, 4))
    }
    alts = _alts(spec)
    min_cost_possible = sum(
        min(window.cost for window in windows) for windows in alts.values()
    )
    limit = float(int(min_cost_possible) + rng.randint(0, 200))
    reference = brute_force(alts, Criterion.TIME, limit)
    # Integer costs and an integer limit: resolution == limit is exact.
    resolution = max(1, int(limit))
    if reference is None:
        with pytest.raises(InfeasibleConstraintError):
            minimize_time(alts, limit, resolution=resolution)
        return
    combo = minimize_time(alts, limit, resolution=resolution)
    assert combo.total_time == pytest.approx(reference.total_time)
    assert combo.total_cost <= limit + 1e-9


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_dp_matches_brute_force_minimize_cost(seed):
    rng = random.Random(seed)
    spec = {
        f"job{i}": [
            (float(rng.randint(1, 6)), float(rng.randint(5, 40)))
            for _ in range(rng.randint(1, 4))
        ]
        for i in range(rng.randint(1, 4))
    }
    alts = _alts(spec)
    min_time_possible = sum(
        min(window.length for window in windows) for windows in alts.values()
    )
    limit = float(int(min_time_possible) + rng.randint(0, 100))
    reference = brute_force(alts, Criterion.COST, limit)
    resolution = max(1, int(limit))
    if reference is None:
        with pytest.raises(InfeasibleConstraintError):
            minimize_cost(alts, limit, resolution=resolution)
        return
    combo = minimize_cost(alts, limit, resolution=resolution)
    assert combo.total_cost == pytest.approx(reference.total_cost)
    assert combo.total_time <= limit + 1e-9


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_vo_budget_is_max_feasible_income(seed):
    """B* from eq. (3) equals the brute-force maximum income under T*."""
    rng = random.Random(seed)
    spec = {
        f"job{i}": [
            (float(rng.randint(1, 6)), float(rng.randint(5, 40)))
            for _ in range(rng.randint(1, 3))
        ]
        for i in range(rng.randint(1, 3))
    }
    alts = _alts(spec)
    quota = time_quota(alts) + rng.randint(0, 60)
    import itertools as it

    lists = list(alts.values())
    feasible_incomes = [
        sum(w.cost for w in combo)
        for combo in it.product(*lists)
        if sum(w.length for w in combo) <= quota + 1e-9
    ]
    resolution = max(1, int(quota))
    if not feasible_incomes:
        with pytest.raises(InfeasibleConstraintError):
            vo_budget(alts, quota, resolution=resolution)
        return
    assert vo_budget(alts, quota, resolution=resolution) == pytest.approx(
        max(feasible_incomes)
    )


def test_minimize_time_under_vo_budget_always_feasible():
    """The eq. (3) budget is attained by some combination, so the Fig. 4
    pipeline (min time under B*) can never be infeasible."""
    rng = random.Random(7)
    for _ in range(20):
        spec = {
            f"job{i}": [
                (float(rng.randint(1, 6)), float(rng.randint(5, 40)))
                for _ in range(rng.randint(1, 4))
            ]
            for i in range(rng.randint(1, 4))
        }
        alts = _alts(spec)
        quota = time_quota(alts)
        try:
            budget = vo_budget(alts, quota, resolution=max(1, int(quota)))
        except InfeasibleConstraintError:
            continue  # quota itself infeasible: iteration dropped upstream
        combo = minimize_time(alts, budget, resolution=max(1, int(budget)))
        assert combo.total_cost <= budget + 1e-9
