"""Tests for the two-phase scheduler façade (repro.core.scheduler).

Note on feasibility: the eq. (2) quota ``T* = Σ_i ⌊Σ_s t_i/l_i⌋`` floors
the *mean* alternative time once per job, so it is *strictly below*
every alternative's time when all ``l`` alternatives of a job have the
same non-integral duration — the DP is then infeasible and the iteration
is dropped (paper protocol) or falls back (EARLIEST policy).  Tests that
want a feasible pipeline therefore use integral durations (the floor is
exact) or cap alternatives accordingly.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Batch,
    BatchScheduler,
    Criterion,
    InfeasibleConstraintError,
    InfeasiblePolicy,
    Job,
    ResourceRequest,
    SchedulerConfig,
    SlotSearchAlgorithm,
)

from tests.conftest import make_uniform_slots


def _batch(*requests: ResourceRequest) -> Batch:
    return Batch(
        Job(request, name=f"j{i}", priority=i) for i, request in enumerate(requests)
    )


class TestScheduleHappyPath:
    def _config(self, **overrides) -> SchedulerConfig:
        # Cap at 2 alternatives and use volumes divisible by 2 so the
        # eq. (2) quota is exact and the DP always feasible.
        defaults = dict(max_alternatives_per_job=2)
        defaults.update(overrides)
        return SchedulerConfig(**defaults)

    def test_schedules_every_covered_job(self):
        slots = make_uniform_slots(3, length=300.0, price=2.0)
        batch = _batch(
            ResourceRequest(2, 50.0, max_price=3.0),
            ResourceRequest(1, 40.0, max_price=3.0),
        )
        outcome = BatchScheduler(self._config()).schedule(slots, batch)
        assert set(outcome.scheduled_jobs) == set(batch)
        assert outcome.postponed == []
        assert not outcome.used_fallback

    def test_selected_windows_are_disjoint(self):
        slots = make_uniform_slots(3, length=300.0, price=2.0)
        batch = _batch(
            ResourceRequest(2, 50.0, max_price=3.0),
            ResourceRequest(2, 60.0, max_price=3.0),
        )
        outcome = BatchScheduler(self._config()).schedule(slots, batch)
        windows = list(outcome.scheduled_jobs.values())
        for i, first in enumerate(windows):
            for second in windows[i + 1 :]:
                assert not first.intersects(second)

    def test_time_objective_sets_budget(self):
        slots = make_uniform_slots(2, length=300.0, price=2.0)
        batch = _batch(ResourceRequest(1, 50.0, max_price=3.0))
        config = self._config(objective=Criterion.TIME)
        outcome = BatchScheduler(config).schedule(slots, batch)
        assert outcome.budget is not None
        assert outcome.combination.total_cost <= outcome.budget + 1e-9

    def test_cost_objective_uses_quota(self):
        slots = make_uniform_slots(2, length=300.0, price=2.0)
        batch = _batch(ResourceRequest(1, 50.0, max_price=3.0))
        config = self._config(objective=Criterion.COST)
        outcome = BatchScheduler(config).schedule(slots, batch)
        assert outcome.budget is None
        assert outcome.quota > 0
        assert outcome.combination.total_time <= outcome.quota + 1e-9

    def test_input_slots_untouched(self):
        slots = make_uniform_slots(2, length=300.0, price=2.0)
        before = list(slots)
        BatchScheduler(self._config()).schedule(
            slots, _batch(ResourceRequest(1, 50.0, max_price=3.0))
        )
        assert list(slots) == before


class TestPostponement:
    def test_uncoverable_job_postponed(self):
        slots = make_uniform_slots(1, length=100.0, price=2.0)
        batch = _batch(
            ResourceRequest(1, 50.0, max_price=3.0),
            ResourceRequest(5, 50.0, max_price=3.0),  # impossible: 5 nodes
        )
        outcome = BatchScheduler().schedule(slots, batch)
        assert [job.name for job in outcome.postponed] == ["j1"]
        assert set(job.name for job in outcome.scheduled_jobs) == {"j0"}

    def test_nothing_coverable(self):
        slots = make_uniform_slots(1, length=10.0, price=2.0)
        batch = _batch(ResourceRequest(2, 50.0, max_price=3.0))
        outcome = BatchScheduler().schedule(slots, batch)
        assert outcome.scheduled_jobs == {}
        assert len(outcome.postponed) == 1
        assert outcome.quota == 0.0


class TestInfeasiblePolicy:
    def _tight_case(self):
        # 3 identical-duration alternatives of 9.9 time units each:
        # quota = floor(29.7/3) = 9 < 9.9, so min-cost is infeasible.
        slots = make_uniform_slots(1, length=29.7, price=2.0)
        batch = _batch(ResourceRequest(1, 9.9, max_price=3.0))
        return slots, batch

    def test_raise_policy(self):
        slots, batch = self._tight_case()
        config = SchedulerConfig(
            algorithm=SlotSearchAlgorithm.ALP, objective=Criterion.COST
        )
        with pytest.raises(InfeasibleConstraintError):
            BatchScheduler(config).schedule(slots, batch)

    def test_earliest_fallback(self):
        slots, batch = self._tight_case()
        config = SchedulerConfig(
            algorithm=SlotSearchAlgorithm.ALP,
            objective=Criterion.COST,
            infeasible_policy=InfeasiblePolicy.EARLIEST,
        )
        outcome = BatchScheduler(config).schedule(slots, batch)
        assert outcome.used_fallback
        (window,) = outcome.scheduled_jobs.values()
        assert window.start == 0.0  # earliest alternative

    def test_time_objective_fallback_when_quota_unreachable(self):
        slots, batch = self._tight_case()
        config = SchedulerConfig(
            algorithm=SlotSearchAlgorithm.ALP,
            objective=Criterion.TIME,
            infeasible_policy=InfeasiblePolicy.EARLIEST,
        )
        outcome = BatchScheduler(config).schedule(slots, batch)
        # vo_budget (eq. 3) is infeasible for the same reason; the
        # fallback still schedules the job.
        assert outcome.used_fallback
        assert outcome.scheduled_jobs


class TestConfigKnobs:
    def test_alp_vs_amp_configs_run(self):
        slots = make_uniform_slots(3, length=300.0, price=2.0)
        batch = _batch(ResourceRequest(2, 50.0, max_price=3.0))
        for algorithm in SlotSearchAlgorithm:
            config = SchedulerConfig(algorithm=algorithm, max_alternatives_per_job=2)
            outcome = BatchScheduler(config).schedule(slots, batch)
            assert outcome.scheduled_jobs

    def test_max_alternatives_cap_respected(self):
        slots = make_uniform_slots(1, length=1000.0, price=2.0)
        batch = _batch(ResourceRequest(1, 10.0, max_price=3.0))
        config = SchedulerConfig(max_alternatives_per_job=2)
        outcome = BatchScheduler(config).schedule(slots, batch)
        assert outcome.search.total_alternatives == 2

    def test_default_config(self):
        scheduler = BatchScheduler()
        assert scheduler.config.algorithm is SlotSearchAlgorithm.AMP
        assert scheduler.config.objective is Criterion.TIME
