"""Tests for durable metascheduler state (repro.grid.checkpoint)."""

from __future__ import annotations

import json
import os

import pytest

from repro.core import Job, Resource, ResourceRequest
from repro.core.errors import CheckpointMismatchError, PersistenceError
from repro.grid import (
    Cluster,
    ComputeNode,
    Metascheduler,
    RetryPolicy,
    VOEnvironment,
)
from repro.grid.checkpoint import (
    CHECKPOINT_FORMAT,
    DurableMetascheduler,
    load_snapshot,
    restore_metascheduler,
    save_snapshot,
    snapshot_metascheduler,
)


def build_meta(**kwargs) -> Metascheduler:
    nodes = []
    for i in range(4):
        node = ComputeNode(f"n{i}", performance=1.0 + i * 0.5, price=1.0 + i)
        # Pin resource uids so independent builds (a reference run vs a
        # durable run) produce byte-identical snapshots.
        node.resource = Resource(
            f"n{i}", performance=1.0 + i * 0.5, price=1.0 + i, uid=900 + i
        )
        nodes.append(node)
    environment = VOEnvironment([Cluster("c0", nodes)])
    return Metascheduler(environment, period=50.0, horizon=500.0, **kwargs)


def make_job(index: int, *, nodes: int = 2) -> Job:
    return Job(
        ResourceRequest(node_count=nodes, volume=60.0, max_price=10.0),
        name=f"job{index}",
        uid=1000 + index,
    )


def canonical(meta: Metascheduler) -> str:
    return json.dumps(snapshot_metascheduler(meta), sort_keys=True)


class TestSnapshotRoundTrip:
    def test_snapshot_restores_identical_state(self):
        meta = build_meta()
        for i in range(4):
            meta.submit(make_job(i), at_time=i * 10.0)
        meta.run(200.0)
        data = json.loads(json.dumps(snapshot_metascheduler(meta)))
        restored = restore_metascheduler(data)
        assert canonical(restored) == canonical(meta)
        assert restored._iteration == meta._iteration
        assert len(restored.trace) == len(meta.trace)
        assert restored.reports == meta.reports

    def test_snapshot_preserves_pending_and_future_submissions(self):
        meta = build_meta()
        meta.submit(make_job(0), at_time=0.0)
        meta.submit(make_job(1), at_time=500.0)  # future arrival
        meta.run_iteration(0.0)
        restored = restore_metascheduler(snapshot_metascheduler(meta))
        assert [job.uid for job in restored.pending_jobs()] == [
            job.uid for job in meta.pending_jobs()
        ]
        assert [
            (time, job.uid) for time, job in restored._submissions
        ] == [(time, job.uid) for time, job in meta._submissions]

    def test_snapshot_preserves_recovery_state(self):
        meta = build_meta(recovery=RetryPolicy(max_revocations=2, backoff_base=10.0))
        for i in range(3):
            meta.submit(make_job(i), at_time=0.0)
        meta.run(100.0)
        node = next(meta.environment.nodes())
        meta.inject_outage(node, 110.0, 150.0)
        restored = restore_metascheduler(snapshot_metascheduler(meta))
        assert restored.recovery is not None
        assert restored.recovery.policy == meta.recovery.policy
        assert restored.recovery._revocations == meta.recovery._revocations
        assert restored.recovery._retained == meta.recovery._retained

    def test_restored_run_continues_like_the_original(self):
        meta = build_meta()
        for i in range(5):
            meta.submit(make_job(i), at_time=i * 20.0)
        meta.run(100.0)
        restored = restore_metascheduler(snapshot_metascheduler(meta))
        meta.run(400.0, start=150.0)
        restored.run(400.0, start=150.0)
        assert canonical(restored) == canonical(meta)

    def test_new_jobs_after_restore_get_fresh_uids(self):
        meta = build_meta()
        meta.submit(make_job(7), at_time=0.0)  # uid 1007
        restored = restore_metascheduler(snapshot_metascheduler(meta))
        fresh = Job(ResourceRequest(node_count=1, volume=10.0))
        assert fresh.uid > 1007
        assert all(fresh.uid != job.uid for job in restored.pending_jobs())

    def test_unknown_format_rejected(self):
        meta = build_meta()
        data = snapshot_metascheduler(meta)
        data["format"] = "repro/99-checkpoint"
        with pytest.raises(CheckpointMismatchError, match="unsupported checkpoint"):
            restore_metascheduler(data)


class TestAtomicSnapshotFiles:
    def test_save_then_load(self, tmp_path):
        meta = build_meta()
        path = tmp_path / "snap.json"
        save_snapshot(snapshot_metascheduler(meta), path)
        data = load_snapshot(path)
        assert data["format"] == CHECKPOINT_FORMAT
        assert not path.with_name("snap.json.tmp").exists()

    def test_crash_between_tmp_write_and_rename_keeps_old_snapshot(
        self, tmp_path, monkeypatch
    ):
        meta = build_meta()
        meta.submit(make_job(0), at_time=0.0)
        path = tmp_path / "snap.json"
        save_snapshot(snapshot_metascheduler(meta), path)
        before = path.read_text(encoding="utf-8")

        meta.run_iteration(0.0)

        def explode(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(PersistenceError, match="cannot write snapshot"):
            save_snapshot(snapshot_metascheduler(meta), path)
        monkeypatch.undo()
        # The visible snapshot is untouched and still restorable.
        assert path.read_text(encoding="utf-8") == before
        restored = restore_metascheduler(load_snapshot(path))
        assert restored._iteration == 0

    def test_load_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(PersistenceError, match="cannot read snapshot"):
            load_snapshot(tmp_path / "absent.json")

    def test_load_garbage_snapshot_raises(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text('{"format": "repro/1-checkpoint', encoding="utf-8")
        with pytest.raises(CheckpointMismatchError, match="not valid JSON"):
            load_snapshot(path)


class TestDurableMetascheduler:
    def run_workload(self, durable: DurableMetascheduler) -> None:
        for i in range(4):
            durable.submit(make_job(i), at_time=i * 10.0)
        durable.run(200.0)
        node = next(durable.meta.environment.nodes())
        durable.inject_outage(node, 210.0, 260.0)
        durable.run_iteration(250.0)

    def test_restore_after_kill_matches_live_state(self, tmp_path):
        meta = build_meta(recovery=RetryPolicy())
        durable = DurableMetascheduler(meta, tmp_path, snapshot_every=3, fsync=False)
        self.run_workload(durable)
        # No close(): simulate an abrupt kill, then restore from disk.
        restored = DurableMetascheduler.restore(tmp_path, fsync=False)
        assert canonical(restored.meta) == canonical(meta)

    def test_restore_tolerates_torn_journal_tail(self, tmp_path):
        meta = build_meta()
        durable = DurableMetascheduler(meta, tmp_path, snapshot_every=100, fsync=False)
        durable.submit(make_job(0), at_time=0.0)
        durable.run_iteration(0.0)
        state_before_tear = canonical(meta)
        durable.run_iteration(50.0)
        durable._journal._stream.flush()
        # Tear the final journal record in half, as a mid-append kill would.
        journal = tmp_path / "journal.jsonl"
        text = journal.read_text(encoding="utf-8")
        lines = text.splitlines()
        journal.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2],
            encoding="utf-8",
        )
        with pytest.warns(UserWarning, match="torn trailing journal record"):
            restored = DurableMetascheduler.restore(tmp_path, fsync=False)
        # The torn iteration is lost; everything before it is intact.
        assert canonical(restored.meta) == state_before_tear

    def test_restore_then_continue_equals_uninterrupted_run(self, tmp_path):
        # Reference: one uninterrupted run.
        reference = build_meta()
        for i in range(4):
            reference.submit(make_job(i), at_time=i * 10.0)
        reference.run(400.0)
        # Durable: same workload, killed after 200, restored, continued.
        meta = build_meta()
        durable = DurableMetascheduler(meta, tmp_path, snapshot_every=2, fsync=False)
        for i in range(4):
            durable.submit(make_job(i), at_time=i * 10.0)
        now = 0.0
        while now <= 200.0:
            durable.run_iteration(now)
            now += meta.period
        restored = DurableMetascheduler.restore(tmp_path, fsync=False)
        while now <= 400.0:
            restored.run_iteration(now)
            now += restored.meta.period
        restored.mark_completions(400.0)
        assert canonical(restored.meta) == canonical(reference)

    def test_restore_without_snapshot_raises(self, tmp_path):
        with pytest.raises(PersistenceError, match="cannot read snapshot"):
            DurableMetascheduler.restore(tmp_path)

    def test_rejected_submission_is_not_journaled(self, tmp_path):
        from repro.core.errors import AdmissionRejectedError
        from repro.core.journal import read_journal

        meta = build_meta(max_pending=1)
        durable = DurableMetascheduler(meta, tmp_path, fsync=False)
        durable.submit(make_job(0), at_time=0.0)
        with pytest.raises(AdmissionRejectedError):
            durable.submit(make_job(1), at_time=0.0)
        durable.close()
        kinds = [record.kind for record in read_journal(tmp_path / "journal.jsonl")]
        assert kinds.count("submit") == 1

    def test_snapshot_every_bounds_replay(self, tmp_path):
        from repro.core.journal import read_journal

        meta = build_meta()
        durable = DurableMetascheduler(meta, tmp_path, snapshot_every=2, fsync=False)
        durable.submit(make_job(0), at_time=0.0)
        durable.run(300.0)  # 7 iterations -> several snapshots
        snapshot = load_snapshot(tmp_path / "snapshot.json")
        records = read_journal(tmp_path / "journal.jsonl")
        pending_replay = [
            record for record in records if record.seq >= snapshot["journal_seq"]
        ]
        assert len(pending_replay) <= 2

    def test_invalid_snapshot_every_rejected(self, tmp_path):
        with pytest.raises(PersistenceError, match="snapshot_every"):
            DurableMetascheduler(build_meta(), tmp_path, snapshot_every=0)

    def test_context_manager_snapshots_on_exit(self, tmp_path):
        meta = build_meta()
        with DurableMetascheduler(meta, tmp_path, snapshot_every=100, fsync=False) as durable:
            durable.submit(make_job(0), at_time=0.0)
            durable.run_iteration(0.0)
        restored = DurableMetascheduler.restore(tmp_path, fsync=False)
        assert canonical(restored.meta) == canonical(meta)
        # Everything is in the snapshot; nothing left to replay.
        snapshot = load_snapshot(tmp_path / "snapshot.json")
        assert restored.meta._iteration == 1
        assert snapshot["journal_seq"] >= 1
