"""Regression tests for the index-mutation edge cases of this PR.

Covers the three satellite fixes:

* zero-width ``subtract`` spans are rejected by :class:`SlotList` and
  :class:`SlotIndex` alike (previously ``end == start`` slipped past an
  ``end < start`` guard and fragmented the containing slot);
* the ``insert`` same-resource overlap check bisects to the insertion
  neighbourhood instead of scanning the whole row prefix (behavioral
  equivalence is pinned here on the crafted cases; the revocation-churn
  oracle covers it at scale);
* ``hint_prunes`` reports *both* start-hint prune tiers — the old
  ``hint_skippable`` count only covered tier 1 (``end <= start_hint``),
  under-reporting the finders' actual skip work — and the instrumented
  search paths carry both numbers in their decision records.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Batch,
    Job,
    ResourceRequest,
    Slot,
    SlotIndex,
    SlotList,
    SlotListError,
)
from repro.core.search import SlotSearchAlgorithm, find_alternatives
from repro.obs.decisions import DecisionLog
from repro.obs.telemetry import configure, get_telemetry, install
from tests.conftest import make_resource, make_uniform_slots


@pytest.fixture(autouse=True)
def _restore_telemetry():
    previous = get_telemetry()
    yield
    install(previous)


class TestZeroWidthSubtract:
    @pytest.mark.parametrize("container", [SlotList, SlotIndex])
    def test_zero_width_span_rejected(self, container):
        resource = make_resource("n0")
        slots = container([Slot(resource, 0.0, 100.0)])
        with pytest.raises(SlotListError, match="empty or negative span"):
            slots.subtract(resource, 40.0, 40.0)
        # The containing slot must be untouched — the old behaviour
        # fragmented [0, 100) into [0, 40) + [40, 100).
        assert [(s.start, s.end) for s in slots] == [(0.0, 100.0)]

    @pytest.mark.parametrize("container", [SlotList, SlotIndex])
    def test_negative_span_still_rejected(self, container):
        resource = make_resource("n0")
        slots = container([Slot(resource, 0.0, 100.0)])
        with pytest.raises(SlotListError, match="empty or negative span"):
            slots.subtract(resource, 50.0, 40.0)

    def test_zero_width_at_slot_boundary_rejected(self):
        # end == start == candidate.start was the worst old case: it
        # deleted the slot and re-inserted it as one zero-width row plus
        # the original span.
        resource = make_resource("n0")
        index = SlotIndex([Slot(resource, 10.0, 100.0)])
        with pytest.raises(SlotListError, match="empty or negative span"):
            index.subtract(resource, 10.0, 10.0)
        assert len(index) == 1


def slot_list_of(index: SlotIndex) -> list[tuple[float, float]]:
    return [(s.start, s.end) for s in index.slot_list()]


class TestInsertBisection:
    def test_overlap_with_row_starting_before_span(self):
        resource = make_resource("n0")
        index = SlotIndex(
            [Slot(resource, 0.0, 50.0)]
            + list(make_uniform_slots(3, start=5.0, length=1.0))
        )
        with pytest.raises(SlotListError, match="overlaps"):
            index.insert(Slot(resource, 20.0, 30.0))

    def test_touching_spans_insert_cleanly(self):
        resource = make_resource("n0")
        index = SlotIndex([Slot(resource, 0.0, 10.0), Slot(resource, 20.0, 30.0)])
        index.insert(Slot(resource, 10.0, 20.0))
        assert slot_list_of(index) == [(0.0, 10.0), (10.0, 20.0), (20.0, 30.0)]

    def test_insert_brand_new_resource_among_many(self):
        index = SlotIndex(make_uniform_slots(10, start=0.0, length=100.0))
        fresh = make_resource("late")
        index.insert(Slot(fresh, 5.0, 25.0))
        assert (5.0, 25.0) in slot_list_of(index)


def pinned_environment() -> tuple[SlotIndex, ResourceRequest]:
    """Hand-built instance with known prune counts at hint 25.

    Rows (perf, price, span): n1 (1, 1, [0,10)), n2 (1, 1, [0,30)),
    n3 (2, 5, [0,35)), n4 (1, 1, [20,100)), n5 (0.5, 1, [40,60)).
    Request: 2 nodes, volume 30, min_performance 1, max_price 2.
    """
    slots = [
        Slot(make_resource("n1", performance=1.0, price=1.0), 0.0, 10.0),
        Slot(make_resource("n2", performance=1.0, price=1.0), 0.0, 30.0),
        Slot(make_resource("n3", performance=2.0, price=5.0), 0.0, 35.0),
        Slot(make_resource("n4", performance=1.0, price=1.0), 20.0, 100.0),
        Slot(make_resource("n5", performance=0.5, price=1.0), 40.0, 60.0),
    ]
    request = ResourceRequest(
        node_count=2, volume=30.0, min_performance=1.0, max_price=2.0
    )
    return SlotIndex(slots), request


class TestHintPrunes:
    def test_pinned_two_tier_counts(self):
        index, request = pinned_environment()
        # Tier 1: only n1 ends at or before the hint.  Tier 2 (with the
        # ALP price cap): statics are {n2, n4} — n1 is too short for
        # runtime 30, n3 too expensive, n5 too slow — and of those only
        # n2 (end 30) cannot fit 30 time units after hint 25.
        assert index.hint_prunes(request, start_hint=25.0) == (1, 1)
        # Without the price cap (AMP) n3 joins the statics: runtime 15,
        # end 35, and 35 - 25 = 10 < 15 adds a second tier-2 prune.
        assert index.hint_prunes(request, start_hint=25.0, check_price=False) == (
            1,
            2,
        )

    def test_unset_hint_reports_zero(self):
        index, request = pinned_environment()
        assert index.hint_prunes(request, start_hint=float("-inf")) == (0, 0)

    def test_tier1_matches_hint_skippable(self):
        index, request = pinned_environment()
        tier1, _ = index.hint_prunes(request, start_hint=25.0)
        assert tier1 == index.hint_skippable(25.0) == 1

    def test_tiers_never_double_count(self):
        # A row pruned by tier 1 must not appear in tier 2: tier 2 only
        # counts rows with end > start_hint.
        index, request = pinned_environment()
        tier1, tier2 = index.hint_prunes(request, start_hint=35.0)
        assert tier1 == 3  # n1, n2, n3 all end at or before 35
        assert tier2 == 0


class TestDecisionRecordFields:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_accepted_records_carry_both_tiers(self, shards):
        configure(decisions=DecisionLog())
        telemetry = get_telemetry()
        slots = SlotList(
            [
                Slot(make_resource(f"d{i}", performance=1.0, price=1.0), 0.0, 400.0)
                for i in range(4)
            ]
        )
        batch = Batch(
            [
                Job(
                    ResourceRequest(
                        node_count=2,
                        volume=100.0,
                        min_performance=1.0,
                        max_price=2.0,
                    ),
                    name="j0",
                )
            ]
        )
        find_alternatives(
            slots,
            batch,
            SlotSearchAlgorithm.ALP,
            use_index=True,
            shards=shards if shards > 1 else None,
        )
        records = [
            record
            for record in telemetry.decisions.records
            if record["op"] in ("search.alternative_accepted", "index.no_window")
        ]
        assert records, "instrumented search emitted no decision records"
        for record in records:
            assert "hint_skips" in record
            assert "hint_runtime_skips" in record

    def test_serial_and_sharded_report_equal_prunes(self):
        from tests.conftest import make_random_batch, make_random_slot_list

        for seed in range(6):
            slots = make_random_slot_list(seed)
            batch = make_random_batch(seed)
            reports: list[list[tuple]] = []
            for shards in (1, 2):
                configure(decisions=DecisionLog())
                telemetry = get_telemetry()
                find_alternatives(
                    slots,
                    batch,
                    SlotSearchAlgorithm.AMP,
                    use_index=True,
                    shards=shards if shards > 1 else None,
                )
                reports.append(
                    [
                        (
                            record["op"],
                            record.get("job"),
                            record.get("hint_skips"),
                            record.get("hint_runtime_skips"),
                        )
                        for record in telemetry.decisions.records
                        if record["op"]
                        in ("search.alternative_accepted", "index.no_window")
                    ]
                )
            assert reports[0] == reports[1], f"prune reports diverge at seed {seed}"
