"""Tests for the experiment protocol, statistics, and figure regeneration."""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.core import Criterion, InvalidRequestError, SlotSearchAlgorithm
from repro.sim import (
    ExperimentConfig,
    ExperimentRunner,
    ParallelRunner,
    derive_iteration_seed,
    figure4,
    figure5,
    figure6,
    generate_iteration,
    merge_results,
    render_figure4,
    render_figure5,
    render_figure6,
    run_pipeline,
    summarize,
    summary_table,
)
from repro.sim.figures import PAPER_REFERENCE
from repro.sim.generators import JobGenerator, SlotGenerator


SMALL = dict(
    iterations=40,
    seed=1234,
    resolution=400,
)


@pytest.fixture(scope="module")
def time_result():
    return ExperimentRunner(ExperimentConfig(objective=Criterion.TIME, **SMALL)).run()


@pytest.fixture(scope="module")
def cost_result():
    return ExperimentRunner(ExperimentConfig(objective=Criterion.COST, **SMALL)).run()


class TestRunPipeline:
    def test_pipeline_on_generated_iteration(self):
        slot_generator = SlotGenerator(seed=5)
        job_generator = JobGenerator(rng=slot_generator.rng)
        # Try a few draws: some iterations are legitimately infeasible.
        for _ in range(10):
            slots = slot_generator.generate()
            batch = job_generator.generate()
            outcome = run_pipeline(
                slots, batch, SlotSearchAlgorithm.AMP, Criterion.TIME, resolution=400
            )
            if outcome is None:
                continue
            sample, combination = outcome
            assert sample.mean_job_time > 0
            assert sample.budget is not None
            assert combination.total_cost <= sample.budget * 1.05
            return
        pytest.fail("no feasible iteration in 10 draws (generator regression?)")


class TestExperimentRunner:
    def test_accounting_adds_up(self, time_result):
        assert (
            time_result.counted
            + time_result.dropped_uncovered
            + time_result.dropped_infeasible
            == time_result.attempted
        )
        assert time_result.counted > 0, "no experiments counted — calibration broke"

    def test_samples_indexed_within_attempts(self, time_result):
        for sample in time_result.samples:
            assert 0 <= sample.index < time_result.attempted
            assert 120 <= sample.slot_count <= 150
            assert 3 <= sample.job_count <= 7

    def test_deterministic_under_seed(self):
        config = ExperimentConfig(objective=Criterion.TIME, iterations=10, seed=77, resolution=200)
        first = ExperimentRunner(config).run()
        second = ExperimentRunner(config).run()
        assert [s.alp.mean_job_time for s in first.samples] == [
            s.alp.mean_job_time for s in second.samples
        ]

    def test_progress_callback(self):
        calls = []
        config = ExperimentConfig(objective=Criterion.TIME, iterations=5, seed=3, resolution=200)
        ExperimentRunner(config).run(progress=lambda done, counted: calls.append((done, counted)))
        assert [done for done, _ in calls] == [1, 2, 3, 4, 5]

    def test_same_drops_for_both_objectives(self, time_result, cost_result):
        # Phase 1 is objective-independent, so the uncovered drops agree.
        assert time_result.dropped_uncovered == cost_result.dropped_uncovered


def _result_document(result) -> str:
    """A byte-comparable serialization of everything a series produced:
    aggregate stats, drop counters, and every per-job outcome."""
    return json.dumps(
        {
            "samples": [asdict(sample) for sample in result.samples],
            "attempted": result.attempted,
            "counted": result.counted,
            "dropped_uncovered": result.dropped_uncovered,
            "dropped_infeasible": result.dropped_infeasible,
            "total_slots_processed": result.total_slots_processed,
            "total_jobs_attempted": result.total_jobs_attempted,
            "summary": str(summarize(result)),
        },
        sort_keys=True,
    )


class TestParallelRunner:
    CONFIG = ExperimentConfig(
        objective=Criterion.TIME, iterations=24, seed=4242, resolution=300
    )

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(InvalidRequestError):
            ParallelRunner(self.CONFIG, workers=0)

    def test_derived_seeds_are_distinct_and_stable(self):
        seeds = [derive_iteration_seed(4242, index) for index in range(100)]
        assert len(set(seeds)) == 100
        assert seeds == [derive_iteration_seed(4242, index) for index in range(100)]

    def test_generate_iteration_is_order_independent(self):
        slots_a, batch_a = generate_iteration(self.CONFIG, 7)
        generate_iteration(self.CONFIG, 3)  # interleaved draw must not matter
        slots_b, batch_b = generate_iteration(self.CONFIG, 7)
        assert [(s.start, s.end, s.price) for s in slots_a] == [
            (s.start, s.end, s.price) for s in slots_b
        ]
        assert [job.request.volume for job in batch_a] == [
            job.request.volume for job in batch_b
        ]

    @pytest.mark.slow
    def test_four_workers_byte_identical_to_serial(self):
        """The ISSUE's determinism contract: ``--workers 4`` produces
        byte-identical aggregate stats and per-job outcomes to the
        serial (one-worker) runner for the same master seed."""
        serial = ParallelRunner(self.CONFIG, workers=1).run()
        parallel = ParallelRunner(self.CONFIG, workers=4).run()
        assert _result_document(parallel) == _result_document(serial)

    def test_merge_results_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_results([])

    def test_progress_reports_shard_boundaries(self):
        calls = []
        ParallelRunner(self.CONFIG, workers=2).run(
            progress=lambda done, counted: calls.append(done)
        )
        assert calls[-1] == self.CONFIG.iterations
        assert calls == sorted(calls)


class TestPaperShape:
    """The headline comparisons must reproduce the paper's *shape*."""

    def test_time_minimization_amp_faster(self, time_result):
        summary = summarize(time_result)
        assert summary.amp.mean_job_time < summary.alp.mean_job_time
        # The paper reports ~35 %; we accept the same sign and a broad band.
        assert 0.10 <= summary.ratios().amp_time_gain <= 0.60

    def test_time_minimization_amp_costlier(self, time_result):
        summary = summarize(time_result)
        assert summary.amp.mean_job_cost > summary.alp.mean_job_cost

    def test_amp_finds_more_alternatives(self, time_result):
        summary = summarize(time_result)
        assert summary.amp.mean_alternatives_per_job > 1.5 * summary.alp.mean_alternatives_per_job

    def test_cost_minimization_small_cost_premium(self, cost_result):
        summary = summarize(cost_result)
        ratios = summary.ratios()
        # Paper: ALP wins cost by only ~9 %; require the premium to be
        # positive but clearly smaller than the time-min premium band.
        assert 0.0 <= ratios.amp_cost_premium <= 0.30

    def test_cost_minimization_amp_still_faster(self, cost_result):
        summary = summarize(cost_result)
        assert summary.amp.mean_job_time < summary.alp.mean_job_time

    def test_slots_per_experiment_near_paper(self, time_result):
        summary = summarize(time_result)
        assert 120 <= summary.mean_slots_per_experiment <= 150


class TestSummary:
    def test_as_rows_structure(self, time_result):
        rows = summarize(time_result).as_rows()
        assert rows[0][0] == "average job execution time"
        assert len(rows) == 6

    def test_summary_table_renders(self, time_result):
        text = summary_table(summarize(time_result))
        assert "metric" in text
        assert "alternatives per job" in text


class TestFigures:
    def test_figure4_panels(self, time_result):
        panel_a, panel_b = figure4(time_result)
        assert set(panel_a.measured) == {"ALP", "AMP"}
        assert panel_a.reference == PAPER_REFERENCE["fig4a_time"]
        assert panel_b.reference == PAPER_REFERENCE["fig4b_cost"]

    def test_figure4_rejects_cost_result(self, cost_result):
        with pytest.raises(InvalidRequestError):
            figure4(cost_result)

    def test_figure5_series_lengths(self, time_result):
        panel = figure5(time_result, first_n=10)
        assert panel.series is not None
        expected = min(10, time_result.counted)
        assert len(panel.series["ALP"]) == expected
        assert len(panel.series["AMP"]) == expected

    def test_figure6_panels(self, cost_result):
        panel_a, panel_b = figure6(cost_result)
        assert panel_a.name == "fig6a_cost"
        assert panel_b.name == "fig6b_time"

    def test_figure6_rejects_time_result(self, time_result):
        with pytest.raises(InvalidRequestError):
            figure6(time_result)

    def test_renderings_contain_both_algorithms(self, time_result, cost_result):
        for text in (
            render_figure4(time_result),
            render_figure5(time_result, first_n=20),
            render_figure6(cost_result),
        ):
            assert "ALP" in text
            assert "AMP" in text
