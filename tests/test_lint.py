"""Tests for the invariant linter (``repro.lint``).

Each rule gets fixture snippets both ways: code that must be flagged and
the compliant rewrite that must pass.  On top of the per-rule fixtures
the suite covers suppression directives, exit codes, the syntax-error
path, the CLI surface, and — the point of the whole exercise — that the
shipped ``src`` tree is itself clean under the full rule set.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    BroadExceptRule,
    DerivedSeedRule,
    EntropyRule,
    Finding,
    GuardedTelemetryRule,
    NoAssertRule,
    OrderedSerializationRule,
    lint_paths,
    lint_source,
    module_key,
    parse_suppressions,
    rules_by_code,
)
from repro.lint.cli import main
from repro.lint.engine import SYNTAX_ERROR_CODE

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

CORE_PATH = "repro/core/sample.py"
SHARDED_PATH = "repro/sim/experiment.py"
SERIALIZING_PATH = "repro/core/journal.py"


def codes(report):
    return [finding.code for finding in report.findings]


# ---------------------------------------------------------------------- #
# RPR001 — ambient entropy                                               #
# ---------------------------------------------------------------------- #


class TestEntropyRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nstamp = time.time()\n",
            "import time\nstamp = time.time_ns()\n",
            "from time import time\nstamp = time()\n",
            "import datetime\nnow = datetime.datetime.now()\n",
            "from datetime import datetime\nnow = datetime.utcnow()\n",
            "import os\nnoise = os.urandom(8)\n",
            "import uuid\ntoken = uuid.uuid4()\n",
            "import secrets\ntoken = secrets.token_hex()\n",
            "import random\nrng = random.SystemRandom()\n",
            "import random\nrng = random.Random()\n",
            "import random\nrng = random.Random(None)\n",
            "import random\nvalue = random.random()\n",
            "import random\nvalue = random.randint(1, 6)\n",
            "import random\nrandom.shuffle([1, 2])\n",
        ],
    )
    def test_flags_ambient_entropy(self, snippet):
        report = lint_source(snippet, CORE_PATH, [EntropyRule])
        assert codes(report) == ["RPR001"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import random\nrng = random.Random(42)\n",
            "import random\nrng = random.Random(seed)\n",
            "import time\nbudget = time.monotonic()\n",
            "import time\nelapsed = time.perf_counter()\n",
            "from repro.obs import clock\nstamp = clock.now()\n",
            "import random\nsample = random.Random(7).random()\n",
        ],
    )
    def test_allows_seeded_and_monotonic(self, snippet):
        report = lint_source(snippet, CORE_PATH, [EntropyRule])
        assert report.findings == []

    def test_clock_shim_is_allowlisted(self):
        snippet = "import time\n\ndef system_clock():\n    return time.time()\n"
        report = lint_source(snippet, "repro/obs/clock.py", [EntropyRule])
        assert report.findings == []

    def test_import_alias_is_resolved(self):
        snippet = "import time as t\nstamp = t.time()\n"
        report = lint_source(snippet, CORE_PATH, [EntropyRule])
        assert codes(report) == ["RPR001"]

    def test_method_named_like_random_helper_not_flagged(self):
        # rng.random() on a local instance is fine; only the module-global
        # helpers (random.random etc.) are banned.
        snippet = "import random\nrng = random.Random(3)\nvalue = rng.random()\n"
        report = lint_source(snippet, CORE_PATH, [EntropyRule])
        assert report.findings == []


# ---------------------------------------------------------------------- #
# RPR002 — derived seeds in sharded paths                                #
# ---------------------------------------------------------------------- #


class TestDerivedSeedRule:
    def test_flags_adhoc_seed_expression(self):
        snippet = (
            "import random\n"
            "def shard(master, index):\n"
            "    return random.Random(master + index)\n"
        )
        report = lint_source(snippet, SHARDED_PATH, [DerivedSeedRule])
        assert codes(report) == ["RPR002"]

    def test_allows_direct_derivation_call(self):
        snippet = (
            "import random\n"
            "from repro.sim.experiment import derive_iteration_seed\n"
            "def shard(master, index):\n"
            "    return random.Random(derive_iteration_seed(master, index))\n"
        )
        report = lint_source(snippet, SHARDED_PATH, [DerivedSeedRule])
        assert report.findings == []

    def test_allows_name_assigned_from_derivation(self):
        snippet = (
            "import random\n"
            "from repro.grid.resilience import derive_node_seed\n"
            "def shard(master, name):\n"
            "    seed = derive_node_seed(master, name)\n"
            "    return random.Random(seed)\n"
        )
        report = lint_source(snippet, SHARDED_PATH, [DerivedSeedRule])
        assert report.findings == []

    def test_out_of_scope_module_is_ignored(self):
        snippet = "import random\nrng = random.Random(1 + 2)\n"
        report = lint_source(snippet, CORE_PATH, [DerivedSeedRule])
        assert report.findings == []

    def test_extra_paths_widen_scope(self):
        snippet = "import random\nrng = random.Random(1 + 2)\n"
        rule = DerivedSeedRule(extra_paths=("core/sample.py",))
        report = lint_source(snippet, CORE_PATH, [rule])
        assert codes(report) == ["RPR002"]

    def test_chaos_modules_are_in_scope(self):
        # The chaos engine is sharded-path scoped: ad-hoc seeds there
        # would make fault placement unreplayable from --chaos-seed.
        snippet = "import random\nrng = random.Random(1 + 2)\n"
        report = lint_source(snippet, "repro/chaos/harness.py", [DerivedSeedRule])
        assert codes(report) == ["RPR002"]

    def test_fault_seed_deriver_is_accepted(self):
        snippet = (
            "import random\n"
            "from repro.chaos.faults import derive_fault_seed\n"
            "def place(master, label):\n"
            "    seed = derive_fault_seed(master, label)\n"
            "    return random.Random(seed)\n"
        )
        report = lint_source(snippet, "repro/chaos/harness.py", [DerivedSeedRule])
        assert report.findings == []


# ---------------------------------------------------------------------- #
# RPR003 — no bare assert                                                #
# ---------------------------------------------------------------------- #


class TestNoAssertRule:
    def test_flags_assert_statement(self):
        snippet = "def check(x):\n    assert x > 0, 'positive'\n"
        report = lint_source(snippet, CORE_PATH, [NoAssertRule])
        assert codes(report) == ["RPR003"]
        assert "python -O" in report.findings[0].message

    def test_typed_error_passes(self):
        snippet = (
            "from repro.core.errors import InvariantViolationError\n"
            "def check(x):\n"
            "    if x <= 0:\n"
            "        raise InvariantViolationError('positive')\n"
        )
        report = lint_source(snippet, CORE_PATH, [NoAssertRule])
        assert report.findings == []


# ---------------------------------------------------------------------- #
# RPR004 — ordered serialization                                         #
# ---------------------------------------------------------------------- #


class TestOrderedSerializationRule:
    def test_flags_dumps_without_sort_keys(self):
        snippet = "import json\npayload = json.dumps({'b': 1, 'a': 2})\n"
        report = lint_source(snippet, SERIALIZING_PATH, [OrderedSerializationRule])
        assert codes(report) == ["RPR004"]

    def test_flags_dump_with_sort_keys_false(self):
        snippet = "import json\njson.dump({}, fh, sort_keys=False)\n"
        report = lint_source(snippet, SERIALIZING_PATH, [OrderedSerializationRule])
        assert codes(report) == ["RPR004"]

    def test_sorted_dumps_passes(self):
        snippet = "import json\npayload = json.dumps({'a': 1}, sort_keys=True)\n"
        report = lint_source(snippet, SERIALIZING_PATH, [OrderedSerializationRule])
        assert report.findings == []

    @pytest.mark.parametrize(
        "snippet",
        [
            "names = {'b', 'a'}\nfor name in {'b', 'a'}:\n    print(name)\n",
            "rows = [item for item in set(values)]\n",
            "rows = [item for item in frozenset(values)]\n",
        ],
    )
    def test_flags_set_iteration(self, snippet):
        report = lint_source(snippet, SERIALIZING_PATH, [OrderedSerializationRule])
        assert codes(report) == ["RPR004"]

    def test_sorted_set_iteration_passes(self):
        snippet = "rows = [item for item in sorted(set(values))]\n"
        report = lint_source(snippet, SERIALIZING_PATH, [OrderedSerializationRule])
        assert report.findings == []

    def test_out_of_scope_module_is_ignored(self):
        snippet = "import json\npayload = json.dumps({'a': 1})\n"
        report = lint_source(snippet, "repro/core/alp.py", [OrderedSerializationRule])
        assert report.findings == []


# ---------------------------------------------------------------------- #
# RPR005 — broad exception handlers                                      #
# ---------------------------------------------------------------------- #


class TestBroadExceptRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "try:\n    work()\nexcept:\n    pass\n",
            "try:\n    work()\nexcept Exception:\n    pass\n",
            "try:\n    work()\nexcept BaseException:\n    pass\n",
            "try:\n    work()\nexcept (ValueError, Exception):\n    pass\n",
        ],
    )
    def test_flags_broad_handlers(self, snippet):
        report = lint_source(snippet, CORE_PATH, [BroadExceptRule])
        assert codes(report) == ["RPR005"]

    def test_specific_handler_passes(self):
        snippet = (
            "from repro.core.errors import JournalCorruptError\n"
            "try:\n"
            "    work()\n"
            "except (ValueError, JournalCorruptError):\n"
            "    raise\n"
        )
        report = lint_source(snippet, CORE_PATH, [BroadExceptRule])
        assert report.findings == []


# ---------------------------------------------------------------------- #
# RPR006 — guarded telemetry emits                                       #
# ---------------------------------------------------------------------- #


class TestGuardedTelemetryRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def record(telemetry, n):\n    telemetry.count('search.batches', n)\n",
            "def record(telemetry, v):\n    telemetry.observe('phase.seconds', v)\n",
            "def record(decisions, job):\n    decisions.emit('dp.selected', job=job)\n",
            (
                "def record(telemetry, job):\n"
                "    telemetry.decisions.emit('dp.selected', job=job)\n"
            ),
        ],
    )
    def test_flags_unguarded_emit(self, snippet):
        report = lint_source(snippet, CORE_PATH, [GuardedTelemetryRule])
        assert codes(report) == ["RPR006"]

    def test_applies_to_grid_modules(self):
        snippet = "def record(telemetry):\n    telemetry.event('meta.tick')\n"
        report = lint_source(
            snippet, "repro/grid/metascheduler.py", [GuardedTelemetryRule]
        )
        assert codes(report) == ["RPR006"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # explicit enabled-check around the emit
            (
                "def record(telemetry, n):\n"
                "    if telemetry.enabled:\n"
                "        telemetry.count('search.batches', n)\n"
            ),
            # guard via a local name assigned from .enabled
            (
                "def record(decisions, job):\n"
                "    record_decisions = decisions.enabled\n"
                "    if record_decisions:\n"
                "        decisions.emit('dp.selected', job=job)\n"
            ),
            # early-return guard as the function's first statement
            (
                "def record(telemetry, n):\n"
                "    if not telemetry.enabled:\n"
                "        return\n"
                "    telemetry.count('search.batches', n)\n"
            ),
            # the instrumented copy of a dual-loop pair
            (
                "def _scan_instrumented(telemetry, slots):\n"
                "    telemetry.count('search.slots_scanned', len(slots))\n"
            ),
            # telemetry_enabled() as the guard test
            (
                "from repro.obs.telemetry import telemetry_enabled\n"
                "def record(telemetry, n):\n"
                "    if telemetry_enabled():\n"
                "        telemetry.count('search.batches', n)\n"
            ),
            # span() is exempt: it returns the shared no-op singleton
            (
                "def run(telemetry):\n"
                "    with telemetry.span('phase1.find_alternatives'):\n"
                "        pass\n"
            ),
            # unrelated receivers are not telemetry
            "def record(stats, n):\n    stats.count('x', n)\n",
        ],
    )
    def test_guarded_and_exempt_shapes_pass(self, snippet):
        report = lint_source(snippet, CORE_PATH, [GuardedTelemetryRule])
        assert report.findings == []

    def test_out_of_scope_module_is_ignored(self):
        snippet = "def record(telemetry, n):\n    telemetry.count('x', n)\n"
        report = lint_source(snippet, "repro/sim/experiment.py", [GuardedTelemetryRule])
        assert report.findings == []

    def test_extra_paths_widen_scope(self):
        snippet = "def record(telemetry, n):\n    telemetry.count('x', n)\n"
        rule = GuardedTelemetryRule(extra_paths=("sim/experiment.py",))
        report = lint_source(snippet, "repro/sim/experiment.py", [rule])
        assert codes(report) == ["RPR006"]


# ---------------------------------------------------------------------- #
# Suppressions                                                           #
# ---------------------------------------------------------------------- #


class TestSuppressions:
    def test_inline_directive_moves_finding_to_suppressed(self):
        snippet = "import time\nstamp = time.time()  # repro-lint: disable=RPR001\n"
        report = lint_source(snippet, CORE_PATH)
        assert report.findings == []
        assert [finding.code for finding in report.suppressed] == ["RPR001"]

    def test_directive_for_other_code_does_not_apply(self):
        snippet = "import time\nstamp = time.time()  # repro-lint: disable=RPR003\n"
        report = lint_source(snippet, CORE_PATH)
        assert codes(report) == ["RPR001"]
        assert report.suppressed == []

    def test_disable_all_silences_the_line(self):
        snippet = "import time\nstamp = time.time()  # repro-lint: disable=all\n"
        report = lint_source(snippet, CORE_PATH)
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_multiple_codes_in_one_directive(self):
        source = "x = 1  # repro-lint: disable=RPR001, RPR004\n"
        assert parse_suppressions(source) == {1: {"RPR001", "RPR004"}}

    def test_directive_only_covers_its_own_line(self):
        snippet = (
            "import time\n"
            "a = time.time()  # repro-lint: disable=RPR001\n"
            "b = time.time()\n"
        )
        report = lint_source(snippet, CORE_PATH)
        assert codes(report) == ["RPR001"]
        assert report.findings[0].line == 3
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------- #
# Engine behaviour                                                       #
# ---------------------------------------------------------------------- #


class TestEngine:
    def test_syntax_error_yields_rpr900(self):
        report = lint_source("def broken(:\n", CORE_PATH)
        assert codes(report) == [SYNTAX_ERROR_CODE]
        assert report.exit_code == 1

    def test_exit_code_zero_when_clean(self):
        report = lint_source("x = 1\n", CORE_PATH)
        assert report.exit_code == 0

    def test_findings_sorted_by_location(self):
        snippet = (
            "import time\n"
            "def check(x):\n"
            "    assert x\n"
            "    return time.time()\n"
        )
        report = lint_source(snippet, CORE_PATH)
        assert [(finding.line, finding.code) for finding in report.findings] == [
            (3, "RPR003"),
            (4, "RPR001"),
        ]

    def test_lint_paths_missing_target_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths([REPO_ROOT / "does-not-exist"])

    def test_lint_paths_walks_directories(self, tmp_path):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("assert True\n", encoding="utf-8")
        (package / "good.py").write_text("x = 1\n", encoding="utf-8")
        report = lint_paths([tmp_path])
        assert report.files_checked == 2
        assert codes(report) == ["RPR003"]

    def test_finding_render_format(self):
        finding = Finding(path="a.py", line=3, col=7, code="RPR001", message="boom")
        assert finding.render() == "a.py:3:7 RPR001 boom"

    def test_module_key_normalizes_to_repro(self):
        assert module_key("src/repro/core/alp.py") == "repro/core/alp.py"
        assert module_key("/x/y/repro/sim/a.py") == "repro/sim/a.py"
        assert module_key("fixtures/loose.py") == "fixtures/loose.py"

    def test_rule_catalog_is_consistent(self):
        catalog = rules_by_code()
        # 6 per-module rules (RPR0xx) + 4 whole-program flow rules (RPR1xx).
        assert len(ALL_RULES) == 6
        assert len(catalog) == 10
        assert {code for code in catalog if code.startswith("RPR1")} == {
            "RPR101",
            "RPR102",
            "RPR103",
            "RPR104",
        }
        for code, rule in catalog.items():
            assert code == rule.code
            assert rule.rationale
            assert rule.__doc__ and code in rule.__doc__


# ---------------------------------------------------------------------- #
# CLI                                                                    #
# ---------------------------------------------------------------------- #


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "0 finding(s)" in captured.err

    def test_findings_exit_one_and_print_locations(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("assert True\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "RPR003" in captured.out
        assert str(bad) in captured.out
        assert "1 finding(s)" in captured.err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unknown_select_code_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert main(["--select", "RPR999", str(tmp_path)]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_select_narrows_rules(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nstamp = time.time()\nassert stamp\n", encoding="utf-8")
        assert main(["--select", "RPR003", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "RPR003" in captured.out
        assert "RPR001" not in captured.out

    def test_list_rules_prints_catalog(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in out

    def test_statistics_summary(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("assert True\nassert False\n", encoding="utf-8")
        assert main(["--statistics", str(tmp_path)]) == 1
        assert "RPR003: 2" in capsys.readouterr().err

    def test_show_suppressed_prints_silenced_findings(self, tmp_path, capsys):
        quiet = tmp_path / "repro" / "core" / "quiet.py"
        quiet.parent.mkdir(parents=True)
        quiet.write_text(
            "import time\nstamp = time.time()  # repro-lint: disable=RPR001\n",
            encoding="utf-8",
        )
        assert main(["--show-suppressed", str(quiet)]) == 0
        captured = capsys.readouterr()
        assert "(suppressed)" in captured.out
        assert "1 suppressed" in captured.err

    def test_module_entry_point_runs(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        assert "RPR001" in result.stdout


# ---------------------------------------------------------------------- #
# The tree itself                                                        #
# ---------------------------------------------------------------------- #


class TestSelfClean:
    def test_src_tree_is_clean(self):
        report = lint_paths([SRC])
        assert report.findings == [], "\n".join(
            finding.render() for finding in report.findings
        )
        assert report.files_checked > 50

    def test_src_tree_has_no_suppressions(self):
        # The shipped tree needs zero escape hatches; if one ever lands,
        # this pins the count so growth is a reviewed decision.
        report = lint_paths([SRC])
        assert report.suppressed == []
