"""Tests for the whole-program layer: symbol table and call graph.

The analyzer's correctness rests on two properties exercised here:

* **Resolution** follows the import graph faithfully — aliases,
  re-exports through ``__init__`` chains, relative imports — and import
  cycles terminate instead of looping.
* **Conservatism** — anything dynamic (getattr dispatch, computed
  attributes, externals) resolves to ``None`` / contributes no edge,
  never a crash and never a fabricated edge.
"""

from __future__ import annotations

import pytest

from repro.lint import CallGraph, Project
from repro.lint.project import module_name_from_key


class TestModuleNaming:
    def test_plain_module(self):
        assert module_name_from_key("repro/core/optimize.py") == "repro.core.optimize"

    def test_package_init_drops_basename(self):
        assert module_name_from_key("repro/core/__init__.py") == "repro.core"

    def test_top_level_file(self):
        assert module_name_from_key("conf.py") == "conf"


class TestSymbolResolution:
    def test_resolves_own_function_and_class_method(self):
        project = Project.from_sources(
            {
                "pkg.mod": (
                    "def fn():\n"
                    "    return 1\n"
                    "class Thing:\n"
                    "    def method(self):\n"
                    "        return 2\n"
                )
            }
        )
        fn = project.resolve_symbol("pkg.mod.fn")
        assert fn is not None and fn.kind == "function"
        method = project.resolve_symbol("pkg.mod.Thing.method")
        assert method is not None and method.kind == "function"
        assert method.local_name == "Thing.method"

    def test_from_import_with_alias(self):
        project = Project.from_sources(
            {
                "pkg.real": "def target():\n    return 1\n",
                "pkg.user": "from pkg.real import target as renamed\n",
            }
        )
        symbol = project.resolve_symbol("pkg.user.renamed")
        assert symbol is not None
        assert symbol.kind == "function"
        assert symbol.module.name == "pkg.real"
        assert symbol.local_name == "target"

    def test_reexport_through_init_chain(self):
        project = Project.from_sources(
            {
                "pkg.__init__": "from pkg.sub import helper\n",
                "pkg.sub.__init__": "from pkg.sub.impl import helper\n",
                "pkg.sub.impl": "def helper():\n    return 1\n",
            }
        )
        symbol = project.resolve_symbol("pkg.helper")
        assert symbol is not None
        assert symbol.module.name == "pkg.sub.impl"
        assert symbol.local_name == "helper"

    def test_import_cycle_terminates(self):
        project = Project.from_sources(
            {
                "pkg.a": "from pkg.b import thing\n",
                "pkg.b": "from pkg.a import thing\n",
            }
        )
        # Mutually re-importing modules must terminate (cycle guard),
        # resolving to None rather than recursing forever.
        assert project.resolve_symbol("pkg.a.thing") is None

    def test_relative_import_resolves_within_package(self):
        project = Project.from_sources(
            {
                "pkg.sub.impl": "def helper():\n    return 1\n",
                "pkg.sub.user": "from .impl import helper\n",
            }
        )
        symbol = project.resolve_symbol("pkg.sub.user.helper")
        assert symbol is not None
        assert symbol.module.name == "pkg.sub.impl"

    def test_external_names_resolve_to_none(self):
        project = Project.from_sources({"pkg.mod": "import os\n"})
        assert project.resolve_symbol("pkg.mod.os.path.join") is None
        assert project.resolve_symbol("nowhere.fn") is None

    def test_fixture_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            Project.from_sources({"pkg.broken": "def broken(:\n"})


class TestCallGraph:
    def test_direct_and_aliased_call_edges(self):
        project = Project.from_sources(
            {
                "pkg.lib": "def helper():\n    return 1\n",
                "pkg.app": (
                    "from pkg.lib import helper as h\n"
                    "def entry():\n"
                    "    return h()\n"
                ),
            }
        )
        graph = CallGraph.build(project)
        assert "pkg.lib.helper" in graph.edges["pkg.app.entry"]

    def test_self_method_edges(self):
        project = Project.from_sources(
            {
                "pkg.mod": (
                    "class Runner:\n"
                    "    def run(self):\n"
                    "        return self._step()\n"
                    "    def _step(self):\n"
                    "        return 1\n"
                )
            }
        )
        graph = CallGraph.build(project)
        assert "pkg.mod.Runner._step" in graph.edges["pkg.mod.Runner.run"]

    def test_inherited_method_resolves_to_base_class(self):
        project = Project.from_sources(
            {
                "pkg.mod": (
                    "class Base:\n"
                    "    def shared(self):\n"
                    "        return 1\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        return self.shared()\n"
                )
            }
        )
        graph = CallGraph.build(project)
        assert "pkg.mod.Base.shared" in graph.edges["pkg.mod.Child.run"]

    def test_constructor_edge_reaches_init(self):
        project = Project.from_sources(
            {
                "pkg.mod": (
                    "class Thing:\n"
                    "    def __init__(self):\n"
                    "        self.x = 1\n"
                    "def make():\n"
                    "    return Thing()\n"
                )
            }
        )
        graph = CallGraph.build(project)
        assert "pkg.mod.Thing.__init__" in graph.edges["pkg.mod.make"]

    def test_callback_reference_counts_as_may_call(self):
        # pool.map(worker, ...) passes the function without calling it;
        # the bare reference must still produce a may-call edge.
        project = Project.from_sources(
            {
                "pkg.mod": (
                    "def worker(x):\n"
                    "    return x\n"
                    "def driver(pool):\n"
                    "    return pool.map(worker, [1, 2])\n"
                )
            }
        )
        graph = CallGraph.build(project)
        assert "pkg.mod.worker" in graph.edges["pkg.mod.driver"]

    def test_dynamic_calls_contribute_no_edges(self):
        project = Project.from_sources(
            {
                "pkg.lib": "def hidden():\n    return 1\n",
                "pkg.mod": (
                    "import pkg.lib\n"
                    "def dynamic(name):\n"
                    "    fn = getattr(pkg.lib, name)\n"
                    "    return fn()\n"
                ),
            }
        )
        graph = CallGraph.build(project)
        # getattr dispatch is unresolvable: conservative no-edge, and
        # building the graph must not raise.
        assert "pkg.lib.hidden" not in graph.edges["pkg.mod.dynamic"]

    def test_reachable_reports_witness_roots(self):
        project = Project.from_sources(
            {
                "pkg.mod": (
                    "def entry():\n"
                    "    return middle()\n"
                    "def middle():\n"
                    "    return leaf()\n"
                    "def leaf():\n"
                    "    return 1\n"
                    "def orphan():\n"
                    "    return 2\n"
                )
            }
        )
        graph = CallGraph.build(project)
        witness = graph.reachable(["pkg.mod.entry"])
        assert witness["pkg.mod.leaf"] == "pkg.mod.entry"
        assert "pkg.mod.orphan" not in witness

    def test_missing_roots_are_ignored(self):
        project = Project.from_sources({"pkg.mod": "def fn():\n    return 1\n"})
        graph = CallGraph.build(project)
        assert graph.reachable(["elsewhere.entry"]) == {}
