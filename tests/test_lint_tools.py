"""Tests for the analyzer tooling: SARIF export, incremental cache,
``--changed-only`` diff mode, and uniform suppression handling across
the RPR0xx/RPR1xx rule families."""

from __future__ import annotations

import json
import subprocess

import pytest

from repro.lint import (
    DEFAULT_RULES,
    LintCache,
    file_suppressions,
    lint_source,
    lint_sources,
    render_sarif,
    sarif_document,
)
from repro.lint.cli import main
from repro.lint.engine import SYNTAX_ERROR_CODE

# An assert in a core module (RPR003) plus an unclosed open (RPR104):
# one finding from each rule family, at known lines.
MIXED_SOURCE = (
    "def check(value):\n"
    "    assert value > 0\n"
    "    handle = open('log.txt')\n"
    "    return handle\n"
)
MIXED_PATH = "repro/core/mixed.py"


def codes(report):
    """Sorted finding codes of a report."""
    return sorted(finding.code for finding in report.findings)


# ---------------------------------------------------------------------- #
# SARIF                                                                  #
# ---------------------------------------------------------------------- #


class TestSarifExport:
    def report(self):
        return lint_source(MIXED_SOURCE, MIXED_PATH, DEFAULT_RULES)

    def test_document_shape(self):
        document = sarif_document(self.report(), DEFAULT_RULES)
        assert document["version"] == "2.1.0"
        assert document["$schema"].endswith("sarif-2.1.0.json")
        (run,) = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [entry["id"] for entry in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        # Full catalog ships in the driver, plus the synthetic
        # syntax-error rule for unparseable files.
        for code in ("RPR003", "RPR101", "RPR104", SYNTAX_ERROR_CODE):
            assert code in rule_ids

    def test_results_reference_catalog_and_use_one_based_columns(self):
        report = self.report()
        document = sarif_document(report, DEFAULT_RULES)
        (run,) = document["runs"]
        assert len(run["results"]) == len(report.findings)
        by_id = {result["ruleId"]: result for result in run["results"]}
        assert set(by_id) == {"RPR003", "RPR104"}
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            (location,) = result["locations"]
            region = location["physicalLocation"]["region"]
            assert region["startColumn"] >= 1
        open_finding = next(f for f in report.findings if f.code == "RPR104")
        region = by_id["RPR104"]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == open_finding.line
        assert region["startColumn"] == open_finding.col + 1

    def test_suppressed_findings_carry_in_source_marker(self):
        suppressed_source = MIXED_SOURCE.replace(
            "assert value > 0",
            "assert value > 0  # repro-lint: disable=RPR003",
        )
        report = lint_source(suppressed_source, MIXED_PATH, DEFAULT_RULES)
        document = sarif_document(report, DEFAULT_RULES)
        results = document["runs"][0]["results"]
        marked = [r for r in results if "suppressions" in r]
        assert [r["ruleId"] for r in marked] == ["RPR003"]
        assert marked[0]["suppressions"] == [{"kind": "inSource"}]
        active = [r for r in results if "suppressions" not in r]
        assert [r["ruleId"] for r in active] == ["RPR104"]

    def test_render_is_deterministic_json(self):
        first = render_sarif(self.report(), DEFAULT_RULES)
        second = render_sarif(self.report(), DEFAULT_RULES)
        assert first == second
        assert json.loads(first)["version"] == "2.1.0"

    def test_cli_writes_sarif_file(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(MIXED_SOURCE, encoding="utf-8")
        out = tmp_path / "findings.sarif"
        assert main(["--format", "sarif", "--output", str(out), str(tmp_path)]) == 1
        document = json.loads(out.read_text(encoding="utf-8"))
        assert {r["ruleId"] for r in document["runs"][0]["results"]} == {
            "RPR003",
            "RPR104",
        }
        # Findings went to the file; stdout stays empty for piping.
        assert capsys.readouterr().out == ""


# ---------------------------------------------------------------------- #
# Incremental cache                                                      #
# ---------------------------------------------------------------------- #


class TestLintCache:
    FILES = [
        (MIXED_PATH, MIXED_SOURCE),
        ("repro/core/clean.py", "x = 1\n"),
    ]

    def test_second_run_hits_and_matches_cold_results(self, tmp_path):
        cache_path = tmp_path / "lint-cache.json"
        cold = lint_sources(self.FILES, DEFAULT_RULES)

        cache = LintCache(cache_path)
        first = lint_sources(self.FILES, DEFAULT_RULES, cache=cache)
        assert cache.hits == 0
        cache.save()

        warm_cache = LintCache(cache_path)
        warm = lint_sources(self.FILES, DEFAULT_RULES, cache=warm_cache)
        assert warm_cache.hits > 0
        assert warm_cache.misses == 0
        for report in (first, warm):
            report.sort()
        cold.sort()
        assert warm.findings == cold.findings == first.findings
        assert warm.suppressed == cold.suppressed

    def test_content_change_invalidates_only_that_file(self, tmp_path):
        cache_path = tmp_path / "lint-cache.json"
        cache = LintCache(cache_path)
        lint_sources(self.FILES, DEFAULT_RULES, cache=cache)
        cache.save()

        edited = [
            (MIXED_PATH, MIXED_SOURCE + "\n# touched\n"),
            ("repro/core/clean.py", "x = 1\n"),
        ]
        warm = LintCache(cache_path)
        report = lint_sources(edited, DEFAULT_RULES, cache=warm)
        assert warm.hits >= 1  # the untouched file
        assert warm.misses >= 1  # the edited file (and the project entry)
        assert codes(report) == ["RPR003", "RPR104"]

    def test_rule_selection_change_invalidates(self, tmp_path):
        from repro.lint import ResourceLifecycleRule

        cache_path = tmp_path / "lint-cache.json"
        cache = LintCache(cache_path)
        lint_sources(self.FILES, DEFAULT_RULES, cache=cache)
        cache.save()

        narrow = LintCache(cache_path)
        report = lint_sources(self.FILES, [ResourceLifecycleRule()], cache=narrow)
        assert narrow.hits == 0
        assert codes(report) == ["RPR104"]

    def test_corrupt_cache_is_discarded(self, tmp_path):
        cache_path = tmp_path / "lint-cache.json"
        cache_path.write_text("{not json", encoding="utf-8")
        cache = LintCache(cache_path)
        report = lint_sources(self.FILES, DEFAULT_RULES, cache=cache)
        assert cache.hits == 0
        assert codes(report) == ["RPR003", "RPR104"]
        cache.save()
        assert json.loads(cache_path.read_text(encoding="utf-8"))


# ---------------------------------------------------------------------- #
# --changed-only                                                         #
# ---------------------------------------------------------------------- #


def _git(tmp_path, *arguments):
    proc = subprocess.run(
        ["git", *arguments],
        cwd=tmp_path,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.fixture
def git_tree(tmp_path, monkeypatch):
    """A tmp git checkout with one committed bad file, cwd switched in."""
    _git(tmp_path, "init", "--quiet")
    _git(tmp_path, "config", "user.email", "lint@test")
    _git(tmp_path, "config", "user.name", "lint")
    committed = tmp_path / "repro" / "core" / "committed.py"
    committed.parent.mkdir(parents=True)
    committed.write_text(MIXED_SOURCE, encoding="utf-8")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "--quiet", "-m", "seed")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestChangedOnly:
    def test_untracked_file_is_reported_committed_is_filtered(
        self, git_tree, capsys
    ):
        fresh = git_tree / "repro" / "core" / "fresh.py"
        fresh.write_text("def f():\n    assert True\n", encoding="utf-8")
        assert main(["--changed-only", str(git_tree)]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        # The committed file's findings exist but are filtered from the
        # report — pre-commit only cares about what the diff touches.
        assert "committed.py" not in out

    def test_clean_diff_exits_zero_despite_old_findings(self, git_tree, capsys):
        assert main(["--changed-only", str(git_tree)]) == 0
        assert capsys.readouterr().out == ""

    def test_outside_git_exits_two(self, tmp_path, monkeypatch, capsys):
        outside = tmp_path / "plain"
        outside.mkdir()
        (outside / "ok.py").write_text("x = 1\n", encoding="utf-8")
        monkeypatch.chdir(outside)
        monkeypatch.setenv("GIT_DIR", str(outside / "nowhere"))
        assert main(["--changed-only", str(outside)]) == 2
        assert "--changed-only" in capsys.readouterr().err


# ---------------------------------------------------------------------- #
# Suppression handling across rule families                              #
# ---------------------------------------------------------------------- #


class TestSuppressionUniformity:
    def test_file_wide_directive_accepts_both_families(self):
        source = (
            "# repro-lint: disable=RPR003,RPR104\n" + MIXED_SOURCE
        )
        assert file_suppressions(source) == {"RPR003", "RPR104"}
        report = lint_source(source, MIXED_PATH, DEFAULT_RULES)
        assert report.findings == []
        assert sorted(f.code for f in report.suppressed) == ["RPR003", "RPR104"]
        assert report.exit_code == 0

    def test_trailing_directive_stays_line_scoped(self):
        source = MIXED_SOURCE.replace(
            "assert value > 0",
            "assert value > 0  # repro-lint: disable=all",
        )
        # The directive trails code: it silences its own line only, so
        # the RPR104 finding two lines down stays active.
        assert file_suppressions(source) == set()
        report = lint_source(source, MIXED_PATH, DEFAULT_RULES)
        assert codes(report) == ["RPR104"]
        assert [f.code for f in report.suppressed] == ["RPR003"]

    def test_flow_finding_suppressed_inline(self):
        source = MIXED_SOURCE.replace(
            "handle = open('log.txt')",
            "handle = open('log.txt')  # repro-lint: disable=RPR104",
        )
        report = lint_source(source, MIXED_PATH, DEFAULT_RULES)
        assert codes(report) == ["RPR003"]
        assert [f.code for f in report.suppressed] == ["RPR104"]

    def test_select_accepts_flow_codes(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(MIXED_SOURCE, encoding="utf-8")
        assert main(["--select", "RPR104", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RPR104" in out and "RPR003" not in out
        # Case-insensitive, same as the RPR0xx family.
        assert main(["--select", "rpr104", str(tmp_path)]) == 1

    def test_select_flow_project_rule(self, tmp_path, capsys):
        ok = tmp_path / "repro" / "core" / "ok.py"
        ok.parent.mkdir(parents=True)
        ok.write_text("x = 1\n", encoding="utf-8")
        assert main(["--select", "RPR101,RPR102", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().err
