"""Tests for economic accounting (repro.grid.accounting)."""

from __future__ import annotations

import pytest

from repro.core import (
    BatchScheduler,
    InfeasiblePolicy,
    InvalidRequestError,
    Job,
    ResourceRequest,
    SchedulerConfig,
)
from repro.grid import (
    Cluster,
    ComputeNode,
    JobState,
    Metascheduler,
    VOEnvironment,
    WorkloadTrace,
    owner_statement,
    user_statement,
)


def _environment() -> VOEnvironment:
    alpha = Cluster(
        "alpha", [ComputeNode(f"a{i}", performance=1.0, price=2.0) for i in range(2)]
    )
    beta = Cluster(
        "beta", [ComputeNode(f"b{i}", performance=1.0, price=4.0) for i in range(2)]
    )
    return VOEnvironment([alpha, beta])


class TestOwnerStatement:
    def test_empty_period_rejected(self):
        with pytest.raises(InvalidRequestError):
            owner_statement(_environment(), 100.0, 100.0)

    def test_income_and_time_split(self):
        environment = _environment()
        nodes = {node.name: node for node in environment.nodes()}
        nodes["a0"].reserve_for("jobX", 0.0, 50.0)  # income 100 on alpha
        nodes["a1"].run_local_job(0.0, 30.0)        # local time on alpha
        nodes["b0"].reserve_for("jobY", 0.0, 25.0)  # income 100 on beta
        statement = owner_statement(environment, 0.0, 100.0)
        by_cluster = {line.cluster: line for line in statement.lines}
        alpha, beta = by_cluster["alpha"], by_cluster["beta"]
        assert alpha.income == pytest.approx(100.0)
        assert alpha.reserved_time == pytest.approx(50.0)
        assert alpha.local_time == pytest.approx(30.0)
        assert alpha.global_share == pytest.approx(50.0 / 80.0)
        assert beta.income == pytest.approx(100.0)
        assert statement.total_income == pytest.approx(200.0)

    def test_idle_cluster_zero_share(self):
        statement = owner_statement(_environment(), 0.0, 100.0)
        assert all(line.global_share == 0.0 for line in statement.lines)
        assert statement.total_income == 0.0

    def test_render_contains_total(self):
        text = owner_statement(_environment(), 0.0, 100.0).render()
        assert "TOTAL" in text
        assert "alpha" in text and "beta" in text


class TestUserStatement:
    def _run_vo(self):
        environment = _environment()
        scheduler = BatchScheduler(
            SchedulerConfig(infeasible_policy=InfeasiblePolicy.EARLIEST)
        )
        meta = Metascheduler(environment, scheduler, period=50.0, horizon=400.0)
        meta.submit(Job(ResourceRequest(2, 50.0, max_price=5.0), name="paid"))
        meta.submit(Job(ResourceRequest(9, 50.0, max_price=5.0), name="unplaceable"))
        meta.run(until=200.0)
        return environment, meta

    def test_lines_cover_all_jobs(self):
        _, meta = self._run_vo()
        statement = user_statement(meta.trace)
        by_name = {line.job_name: line for line in statement.lines}
        assert set(by_name) == {"paid", "unplaceable"}
        assert by_name["paid"].cost is not None
        assert by_name["paid"].wait_time is not None
        assert by_name["unplaceable"].cost is None
        assert by_name["unplaceable"].state is JobState.PENDING

    def test_user_spend_equals_owner_income(self):
        """Money conservation: what users pay is what owners earn."""
        environment, meta = self._run_vo()
        statement = user_statement(meta.trace)
        owners = owner_statement(environment, 0.0, 10_000.0)
        assert statement.total_spend == pytest.approx(owners.total_income)

    def test_empty_trace(self):
        statement = user_statement(WorkloadTrace())
        assert statement.total_spend == 0.0
        assert "TOTAL" in statement.render()

    def test_render_shapes(self):
        _, meta = self._run_vo()
        text = user_statement(meta.trace).render()
        assert "paid" in text
        assert "pending" in text
