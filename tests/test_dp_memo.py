"""Tests for the cross-cycle DP memoization (repro.core.optimize.DPMemo).

The memo is keyed by the values the backward run consumes, so
invalidation must be automatic: changing the alternative sets, the
constraint limit, or a budget-forced resolution step-down must all miss.
And memo-on runs must be byte-identical to memo-off runs — a hit returns
exactly what recomputation would.
"""

from __future__ import annotations

import pytest

from repro.core import Batch, Job, ResourceRequest, Slot, SlotList
from repro.core.criteria import Criterion
from repro.core.errors import InfeasibleConstraintError, OptimizationError
from repro.core.optimize import (
    DPMemo,
    OptimizationBudget,
    minimize_time,
    optimize,
    time_quota,
    vo_budget,
)
from repro.core.scheduler import BatchScheduler, SchedulerConfig
from repro.core.search import find_alternatives
from repro.obs.telemetry import configure, get_telemetry, install
from tests.conftest import make_random_batch, make_random_slot_list, make_resource


@pytest.fixture(autouse=True)
def _restore_telemetry():
    previous = get_telemetry()
    yield
    install(previous)


def covered_alternatives(seed: int):
    """Phase-1 alternatives for a seeded instance (covered jobs only)."""
    result = find_alternatives(make_random_slot_list(seed), make_random_batch(seed))
    return {job: windows for job, windows in result.alternatives.items() if windows}


def combination_key(combination):
    """Value identity of a phase-2 outcome (window object ids aside)."""
    return (
        combination.total_cost,
        combination.total_time,
        combination.degraded,
        sorted(
            (job.name, window.start, window.cost)
            for job, window in combination.selection.items()
        ),
    )


class TestMemoHitsAndInvalidation:
    def test_identical_instance_hits_and_matches(self):
        covered = covered_alternatives(1)
        quota = time_quota(covered)
        memo = DPMemo()
        first = optimize(covered, Criterion.COST, quota, memo=memo)
        assert memo.stats() == {"hits": 0, "misses": 1, "entries": 1}
        second = optimize(covered, Criterion.COST, quota, memo=memo)
        assert memo.hits == 1
        assert combination_key(first) == combination_key(second)

    def test_alternative_set_change_invalidates(self):
        covered = covered_alternatives(2)
        quota = time_quota(covered)
        memo = DPMemo()
        optimize(covered, Criterion.COST, quota, memo=memo)
        # Drop one alternative of one job: the per-job (g, z) rows
        # change, so the memo must miss, not serve the stale table.
        job = next(job for job, windows in covered.items() if len(windows) > 1)
        shrunk = dict(covered)
        shrunk[job] = covered[job][:-1]
        fresh = optimize(shrunk, Criterion.COST, quota, memo=memo)
        assert memo.stats()["misses"] == 2
        assert combination_key(fresh) == combination_key(
            optimize(shrunk, Criterion.COST, quota, memo=DPMemo(enabled=False))
        )

    def test_quota_change_invalidates(self):
        covered = covered_alternatives(3)
        quota = time_quota(covered)
        memo = DPMemo()
        optimize(covered, Criterion.COST, quota, memo=memo)
        optimize(covered, Criterion.COST, quota * 2.0, memo=memo)
        assert memo.stats() == {"hits": 0, "misses": 2, "entries": 2}

    def test_budget_stepdown_mid_stream_invalidates(self):
        covered = covered_alternatives(4)
        quota = time_quota(covered)
        memo = DPMemo()
        optimize(covered, Criterion.COST, quota, resolution=400, memo=memo)
        # A max_cells budget forces the resolution down mid-stream: the
        # discretization (capacity and z rows) changes, so the memo must
        # miss and re-solve at the coarser bins.
        total = sum(len(windows) for windows in covered.values())
        budget = OptimizationBudget(max_cells=total * 101, min_resolution=50)
        stepped = optimize(
            covered, Criterion.COST, quota, resolution=400, budget=budget, memo=memo
        )
        assert memo.stats()["misses"] == 2
        assert stepped.degraded
        reference = optimize(
            covered,
            Criterion.COST,
            quota,
            resolution=400,
            budget=budget,
            memo=DPMemo(enabled=False),
        )
        assert combination_key(stepped) == combination_key(reference)

    def test_infeasible_outcomes_are_cached(self):
        resource = make_resource("solo", performance=1.0, price=1.0)
        job = Job(ResourceRequest(node_count=1, volume=10.0), name="j0")
        window = find_alternatives(
            # One slot, one job, one window of length 10.
            SlotList([Slot(resource, 0.0, 10.0)]),
            Batch([job]),
        ).alternatives[job]
        memo = DPMemo()
        for _ in range(2):
            with pytest.raises(InfeasibleConstraintError):
                optimize({job: window}, Criterion.COST, 1.0, memo=memo)
        assert memo.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_lru_eviction_bounds_entries(self):
        covered = covered_alternatives(5)
        memo = DPMemo(max_entries=2)
        quota = time_quota(covered)
        for bump in range(4):
            optimize(covered, Criterion.COST, quota + bump, memo=memo)
        assert len(memo) == 2
        assert memo.stats()["misses"] == 4

    def test_disabled_memo_records_nothing(self):
        covered = covered_alternatives(6)
        memo = DPMemo(enabled=False)
        quota = time_quota(covered)
        optimize(covered, Criterion.COST, quota, memo=memo)
        optimize(covered, Criterion.COST, quota, memo=memo)
        assert memo.stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_invalid_capacity_rejected(self):
        with pytest.raises(OptimizationError):
            DPMemo(max_entries=0)


class TestSchedulerMemoIsolation:
    """No ambient process-wide memo: schedulers never share cache state
    implicitly (the retired ``DEFAULT_DP_MEMO`` module global)."""

    def test_schedulers_do_not_share_memo_implicitly(self):
        slots = make_random_slot_list(3)
        batch = make_random_batch(3)
        first = BatchScheduler(SchedulerConfig())
        first.schedule(slots, batch)
        first.schedule(slots, batch)
        # Same instance twice: the second cycle hits the private memo.
        assert first.dp_memo.stats()["hits"] > 0

        # A fresh scheduler on the *same* instance starts cold — were a
        # process-wide memo still ambient, these would be all hits.
        second = BatchScheduler(SchedulerConfig())
        assert second.dp_memo is not first.dp_memo
        second.schedule(slots, batch)
        assert second.dp_memo.stats()["hits"] == 0
        assert second.dp_memo.stats()["misses"] > 0

    def test_explicit_sharing_is_opt_in(self):
        slots = make_random_slot_list(4)
        batch = make_random_batch(4)
        shared = DPMemo()
        a = BatchScheduler(SchedulerConfig(dp_memo=shared))
        b = BatchScheduler(SchedulerConfig(dp_memo=shared))
        assert a.dp_memo is shared and b.dp_memo is shared
        a.schedule(slots, batch)
        outcome_shared = b.schedule(slots, batch)
        assert shared.stats()["hits"] > 0
        # The hit-served outcome is value-identical to a cold scheduler's.
        outcome_cold = BatchScheduler(SchedulerConfig()).schedule(slots, batch)
        assert combination_key(outcome_shared.combination) == combination_key(
            outcome_cold.combination
        )
        assert outcome_shared.quota == outcome_cold.quota
        assert outcome_shared.budget == outcome_cold.budget

    def test_module_has_no_default_memo_global(self):
        import importlib

        # ``import repro.core.optimize as m`` would bind the re-exported
        # *function* (repro.core shadows the submodule name); go through
        # importlib to get the module object itself.
        optimize_module = importlib.import_module("repro.core.optimize")
        assert not hasattr(optimize_module, "DEFAULT_DP_MEMO")
        assert "DEFAULT_DP_MEMO" not in optimize_module.__all__


class TestSchedulerByteIdentity:
    @pytest.mark.parametrize("objective", [Criterion.TIME, Criterion.COST])
    def test_memo_on_equals_memo_off_across_seeded_run(self, objective):
        """Repeated seeded scheduling cycles: memo on ≡ memo off."""
        memo = DPMemo()
        on = BatchScheduler(SchedulerConfig(objective=objective, dp_memo=memo))
        off = BatchScheduler(
            SchedulerConfig(objective=objective, dp_memo=DPMemo(enabled=False))
        )
        for seed in range(8):
            slots = make_random_slot_list(seed)
            batch = make_random_batch(seed)
            # Two cycles per seed so the second poses the memo an
            # already-solved instance (a guaranteed cross-cycle hit).
            for _ in range(2):
                outcome_on = on.schedule(slots, batch)
                outcome_off = off.schedule(slots, batch)
                assert outcome_on.quota == outcome_off.quota
                assert outcome_on.budget == outcome_off.budget
                assert combination_key(outcome_on.combination) == combination_key(
                    outcome_off.combination
                )
        assert memo.hits > 0

    def test_vo_budget_hits_cross_cycle(self):
        covered = covered_alternatives(7)
        quota = time_quota(covered)
        memo = DPMemo()
        assert vo_budget(covered, quota, memo=memo) == vo_budget(
            covered, quota, memo=memo
        )
        assert memo.stats() == {"hits": 1, "misses": 1, "entries": 1}


class TestMemoTelemetry:
    def test_hit_and_miss_counters(self):
        configure()
        telemetry = get_telemetry()
        covered = covered_alternatives(8)
        budget_limit = vo_budget(covered)
        memo = DPMemo()
        minimize_time(covered, budget_limit, memo=memo)
        minimize_time(covered, budget_limit, memo=memo)
        registry = telemetry.registry
        assert registry.counter("dp.memo.misses", objective="time").value == 1
        assert registry.counter("dp.memo.hits", objective="time").value == 1
