"""Tests for the flow rules RPR101–RPR104 and the self-scan pin.

Each rule gets matched good/bad fixture pairs: the bad variant must be
flagged at the right line, the good variant — including every dynamic
construct the analysis cannot resolve — must produce **no** finding
(conservatism is part of the contract, not an accident).
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import (
    DEFAULT_RULES,
    ExceptionContractRule,
    ForkSafetyRule,
    ResourceLifecycleRule,
    SharedStateRule,
    lint_paths,
    lint_source,
    lint_sources,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def codes(report):
    """Sorted finding codes of a report."""
    return sorted(finding.code for finding in report.findings)


# ---------------------------------------------------------------------- #
# RPR101 — shared state in worker-reachable code                         #
# ---------------------------------------------------------------------- #


class TestSharedStateRule:
    RULE = SharedStateRule(extra_entry_points=("repro.core.work.worker",))

    def run(self, source: str, path: str = "repro/core/work.py"):
        return lint_sources([(path, source)], [self.RULE])

    def test_global_rebind_in_worker_is_flagged(self):
        report = self.run(
            "COUNTER = 0\n"
            "def worker():\n"
            "    global COUNTER\n"
            "    COUNTER = COUNTER + 1\n"
        )
        assert codes(report) == ["RPR101"]
        assert "COUNTER" in report.findings[0].message

    def test_mutating_method_on_module_state_is_flagged(self):
        report = self.run(
            "RESULTS = []\n"
            "def worker():\n"
            "    RESULTS.append(1)\n"
        )
        assert codes(report) == ["RPR101"]
        assert ".append()" in report.findings[0].message

    def test_write_through_one_hop_alias_is_flagged(self):
        report = self.run(
            "TABLE = {}\n"
            "def worker():\n"
            "    entries = TABLE\n"
            "    entries['k'] = 1\n"
        )
        assert codes(report) == ["RPR101"]

    def test_transitively_reached_writer_is_flagged(self):
        report = self.run(
            "STATE = {}\n"
            "def worker():\n"
            "    return _helper()\n"
            "def _helper():\n"
            "    STATE['k'] = 1\n"
        )
        assert codes(report) == ["RPR101"]
        assert "_helper" in report.findings[0].message

    def test_local_state_is_clean(self):
        report = self.run(
            "def worker():\n"
            "    results = []\n"
            "    results.append(1)\n"
            "    return results\n"
        )
        assert report.findings == []

    def test_unreachable_writer_is_clean(self):
        # Same write, but nothing connects it to a worker entry point.
        report = self.run(
            "STATE = {}\n"
            "def worker():\n"
            "    return 1\n"
            "def offline_maintenance():\n"
            "    STATE.clear()\n"
        )
        assert report.findings == []

    def test_obs_layer_is_allowlisted(self):
        # The observability layer is per-process context by contract.
        rule = SharedStateRule(extra_entry_points=("repro.obs.ctx.worker",))
        report = lint_sources(
            [("repro/obs/ctx.py", "ACTIVE = None\ndef worker():\n    global ACTIVE\n    ACTIVE = 1\n")],
            [rule],
        )
        assert report.findings == []


# ---------------------------------------------------------------------- #
# RPR102 — typed errors at the public surface                            #
# ---------------------------------------------------------------------- #


class TestExceptionContractRule:
    def run(self, source: str, path: str = "repro/core/api.py"):
        return lint_sources([(path, source)], [ExceptionContractRule()])

    def test_exported_function_raising_valueerror_is_flagged(self):
        report = self.run(
            "__all__ = ['entry']\n"
            "def entry(x):\n"
            "    raise ValueError('bad')\n"
        )
        assert codes(report) == ["RPR102"]
        assert "ValueError" in report.findings[0].message

    def test_transitive_helper_raising_runtimeerror_is_flagged(self):
        report = self.run(
            "__all__ = ['entry']\n"
            "def entry(x):\n"
            "    return _helper(x)\n"
            "def _helper(x):\n"
            "    raise RuntimeError('boom')\n"
        )
        assert codes(report) == ["RPR102"]
        assert "_helper" in report.findings[0].message

    def test_exported_class_methods_are_roots(self):
        report = self.run(
            "__all__ = ['Api']\n"
            "class Api:\n"
            "    def call(self):\n"
            "        raise ValueError('bad')\n"
        )
        assert codes(report) == ["RPR102"]

    def test_project_typed_error_is_clean(self):
        report = lint_sources(
            [
                (
                    "repro/core/errors.py",
                    "class SchedulingError(Exception):\n    pass\n",
                ),
                (
                    "repro/core/api.py",
                    "from repro.core.errors import SchedulingError\n"
                    "__all__ = ['entry']\n"
                    "def entry(x):\n"
                    "    raise SchedulingError('typed')\n",
                ),
            ],
            [ExceptionContractRule()],
        )
        assert report.findings == []

    def test_allowed_builtins_are_clean(self):
        # KeyError/TypeError are the idiomatic contract of lookups and
        # argument checks; the OSError family reports real I/O failures.
        report = self.run(
            "__all__ = ['entry']\n"
            "def entry(mapping, key):\n"
            "    if key not in mapping:\n"
            "        raise KeyError(key)\n"
            "    if not isinstance(key, str):\n"
            "        raise TypeError('key must be str')\n"
            "    raise OSError('disk gone')\n"
        )
        assert report.findings == []

    def test_dynamic_raise_degrades_to_no_finding(self):
        report = self.run(
            "__all__ = ['entry']\n"
            "def entry(errors):\n"
            "    raise errors[0]\n"
        )
        assert report.findings == []

    def test_private_function_raising_is_clean(self):
        report = self.run(
            "__all__ = ['entry']\n"
            "def entry(x):\n"
            "    return x\n"
            "def _internal(x):\n"
            "    raise ValueError('never public')\n"
        )
        assert report.findings == []


# ---------------------------------------------------------------------- #
# RPR103 — fork safety                                                   #
# ---------------------------------------------------------------------- #


class TestForkSafetyRule:
    def run(self, source: str):
        return lint_source(source, "repro/sim/ship.py", [ForkSafetyRule()])

    def test_file_shipped_through_pool_is_flagged(self):
        report = self.run(
            "import multiprocessing\n"
            "def driver(fn):\n"
            "    handle = open('log.txt')\n"
            "    pool = multiprocessing.Pool(2)\n"
            "    pool.map(fn, [handle])\n"
        )
        assert codes(report) == ["RPR103"]
        assert "'handle'" in report.findings[0].message

    def test_lock_in_process_args_is_flagged(self):
        report = self.run(
            "import threading\n"
            "from multiprocessing import Process\n"
            "def driver(fn):\n"
            "    lock = threading.Lock()\n"
            "    Process(target=fn, args=(lock,)).start()\n"
        )
        assert codes(report) == ["RPR103"]

    def test_closure_capturing_file_is_flagged(self):
        report = self.run(
            "import multiprocessing\n"
            "def driver():\n"
            "    sink = open('out.txt', 'w')\n"
            "    def task(x):\n"
            "        sink.write(str(x))\n"
            "    pool = multiprocessing.Pool(2)\n"
            "    pool.map(task, [1, 2])\n"
        )
        assert codes(report) == ["RPR103"]
        assert "closure" in report.findings[0].message

    def test_pipe_connection_in_process_args_is_allowed(self):
        # Handing a child its pipe end at creation time is the
        # documented multiprocessing pattern (shard_search uses it).
        report = self.run(
            "from multiprocessing import Pipe, Process\n"
            "def driver(fn):\n"
            "    parent, child = Pipe()\n"
            "    Process(target=fn, args=(child,)).start()\n"
            "    return parent\n"
        )
        assert report.findings == []

    def test_pipe_through_pool_is_flagged(self):
        report = self.run(
            "import multiprocessing\n"
            "from multiprocessing import Pipe\n"
            "def driver(fn):\n"
            "    parent, child = Pipe()\n"
            "    pool = multiprocessing.Pool(2)\n"
            "    pool.apply_async(fn, (child,))\n"
        )
        assert codes(report) == ["RPR103"]

    def test_plain_values_are_clean(self):
        report = self.run(
            "import multiprocessing\n"
            "def driver(fn, paths):\n"
            "    pool = multiprocessing.Pool(2)\n"
            "    pool.map(fn, paths)\n"
        )
        assert report.findings == []

    def test_unknown_receiver_degrades_to_no_finding(self):
        # .map() on something the analysis cannot prove is a pool.
        report = self.run(
            "def driver(executor, fn):\n"
            "    handle = open('log.txt')\n"
            "    executor.map(fn, [handle])\n"
        )
        assert codes(report) == []


# ---------------------------------------------------------------------- #
# RPR104 — resource lifecycle                                            #
# ---------------------------------------------------------------------- #


class TestResourceLifecycleRule:
    def run(self, source: str):
        return lint_source(source, "repro/sim/files.py", [ResourceLifecycleRule()])

    def test_bare_open_is_flagged(self):
        report = self.run(
            "def loader(path):\n"
            "    handle = open(path)\n"
            "    return handle.read()\n"
        )
        assert codes(report) == ["RPR104"]

    def test_with_block_is_clean(self):
        report = self.run(
            "def loader(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n"
        )
        assert report.findings == []

    def test_try_finally_both_placements_are_clean(self):
        inside = (
            "def loader(path):\n"
            "    try:\n"
            "        handle = open(path)\n"
            "        return handle.read()\n"
            "    finally:\n"
            "        handle.close()\n"
        )
        sibling = (
            "def loader(path):\n"
            "    handle = open(path)\n"
            "    try:\n"
            "        return handle.read()\n"
            "    finally:\n"
            "        handle.close()\n"
        )
        assert self.run(inside).findings == []
        assert self.run(sibling).findings == []

    def test_ownership_transfer_is_clean(self):
        report = self.run(
            "def opener(path):\n"
            "    return open(path)\n"
            "class Sink:\n"
            "    def __init__(self, path):\n"
            "        self._handle = open(path, 'a')\n"
            "    def close(self):\n"
            "        self._handle.close()\n"
        )
        assert report.findings == []

    def test_tempdir_with_cleanup_in_finally_is_clean(self):
        report = self.run(
            "import tempfile\n"
            "def scratch(work):\n"
            "    staging = tempfile.TemporaryDirectory()\n"
            "    try:\n"
            "        return work(staging.name)\n"
            "    finally:\n"
            "        staging.cleanup()\n"
        )
        assert report.findings == []

    def test_unclosed_tempfile_is_flagged(self):
        report = self.run(
            "import tempfile\n"
            "def scratch():\n"
            "    spool = tempfile.NamedTemporaryFile()\n"
            "    spool.write(b'x')\n"
        )
        assert codes(report) == ["RPR104"]


# ---------------------------------------------------------------------- #
# Self-scan pin                                                          #
# ---------------------------------------------------------------------- #


class TestSelfScan:
    def test_src_tree_is_clean_with_zero_suppressions(self):
        """The full rule set over the repo's own src/ tree: self-clean.

        Zero findings *and* zero suppressions — the tree earns its clean
        bill without a single ``repro-lint: disable`` escape hatch, so
        any new finding is a regression in the code, not noise.
        """
        report = lint_paths([REPO_SRC], DEFAULT_RULES)
        rendered = [finding.render() for finding in report.findings]
        assert rendered == []
        assert report.suppressed == []
        assert report.exit_code == 0
        assert report.files_checked > 80
