"""Tests for the utility-function slot-selection baseline (ref. [7] style)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    cheapest_find_window,
    deadline_utility,
    earliness_utility,
    firstfit_find_window,
    utility_find_window,
)
from repro.core import (
    InvalidRequestError,
    Resource,
    ResourceRequest,
    Slot,
    SlotList,
)
from repro.core import amp

from tests.conftest import make_resource


def _slots():
    pricey_early = Slot(make_resource("pricey", price=8.0), 0.0, 300.0)
    cheap_late = Slot(make_resource("cheap", price=1.0), 100.0, 400.0)
    return SlotList([pricey_early, cheap_late])


class TestStockUtilities:
    def test_earliness_validation(self):
        with pytest.raises(InvalidRequestError):
            earliness_utility(start_weight=-1.0)
        with pytest.raises(InvalidRequestError):
            earliness_utility(start_weight=0.0, cost_weight=0.0)

    def test_deadline_validation(self):
        with pytest.raises(InvalidRequestError):
            deadline_utility(100.0, value=0.0)
        with pytest.raises(InvalidRequestError):
            deadline_utility(100.0, decay=0.0)
        with pytest.raises(InvalidRequestError):
            deadline_utility(100.0, cost_weight=-1.0)

    def test_deadline_decay_shape(self):
        node = make_resource(price=0.0)
        utility = deadline_utility(100.0, value=500.0, decay=2.0, cost_weight=0.0)
        request = ResourceRequest(1, 50.0)
        early = amp.find_window(SlotList([Slot(node, 0.0, 200.0)]), request)
        late = amp.find_window(SlotList([Slot(node, 80.0, 300.0)]), request)
        assert early is not None and late is not None
        assert utility(early) == pytest.approx(500.0)  # ends at 50 <= 100
        assert utility(late) == pytest.approx(500.0 - 2.0 * 30.0)  # ends at 130


class TestUtilityFindWindow:
    def test_pure_start_weight_matches_firstfit_start(self):
        slots = _slots()
        request = ResourceRequest(1, 50.0, max_price=10.0)
        chosen = utility_find_window(slots, request, earliness_utility(start_weight=1.0))
        reference = firstfit_find_window(slots, request)
        assert chosen is not None and reference is not None
        assert chosen.start == reference.start == 0.0

    def test_pure_cost_weight_matches_cheapest(self):
        slots = _slots()
        request = ResourceRequest(1, 50.0, max_price=10.0)
        chosen = utility_find_window(
            slots, request, earliness_utility(start_weight=0.0, cost_weight=1.0)
        )
        reference = cheapest_find_window(slots, request)
        assert chosen is not None and reference is not None
        assert chosen.cost == pytest.approx(reference.cost)
        assert chosen.resources()[0].name == "cheap"

    def test_budget_respected(self):
        slots = _slots()
        # Budget 300: the pricey window costs 400 and is excluded even
        # though it maximizes earliness.
        request = ResourceRequest(1, 50.0, max_price=6.0)
        chosen = utility_find_window(slots, request, earliness_utility(start_weight=1.0))
        assert chosen is not None
        assert chosen.resources()[0].name == "cheap"

    def test_none_when_infeasible(self):
        slots = _slots()
        request = ResourceRequest(3, 50.0, max_price=10.0)
        assert utility_find_window(slots, request, earliness_utility()) is None

    def test_deadline_prefers_meeting_deadline_over_price(self):
        slots = _slots()
        request = ResourceRequest(1, 50.0, max_price=10.0)
        # Tight deadline: only the early (pricey) window finishes by 60.
        utility = deadline_utility(60.0, value=10_000.0, decay=100.0, cost_weight=1.0)
        chosen = utility_find_window(slots, request, utility)
        assert chosen is not None
        assert chosen.resources()[0].name == "pricey"

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_utility_never_below_amp_choice(self, seed):
        """The utility maximizer, fed AMP's own candidate stream, can
        never return a window with lower utility than AMP's earliest-fit
        pick."""
        rng = random.Random(seed)
        slots = []
        start = 0.0
        for i in range(25):
            start += rng.uniform(0.0, 10.0)
            node = Resource(
                f"n{i}", performance=rng.uniform(1.0, 3.0), price=rng.uniform(1.0, 6.0)
            )
            slots.append(Slot(node, start, start + rng.uniform(50.0, 300.0)))
        slot_list = SlotList(slots)
        request = ResourceRequest(
            node_count=rng.randint(1, 3), volume=rng.uniform(30.0, 120.0), max_price=5.0
        )
        utility = earliness_utility(start_weight=1.0, cost_weight=0.3)
        best = utility_find_window(slot_list, request, utility)
        amp_pick = amp.find_window(slot_list, request)
        if amp_pick is None:
            assert best is None
        else:
            assert best is not None
            assert utility(best) >= utility(amp_pick) - 1e-9
