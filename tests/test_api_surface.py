"""API-surface contract tests.

Every name a package advertises in ``__all__`` must resolve, and every
public class/function must carry a docstring — the deliverable is a
library, and an advertised-but-broken or undocumented symbol is a bug
like any other.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.grid",
    "repro.baselines",
    "repro.sim",
    "repro.obs",
    "repro.lint",
    "repro.chaos",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} must declare __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_complete(package_name):
    """Every public name an ``__init__`` exposes is advertised in ``__all__``.

    A name imported into the package namespace but missing from
    ``__all__`` is a half-public API: reachable, unadvertised, and
    invisible to ``from package import *`` and to mypy's re-export
    check under py.typed.  Submodules reachable as attributes (e.g.
    ``repro.core.alp``) are exempt — they are namespaces, not symbols.
    """
    package = importlib.import_module(package_name)
    advertised = set(package.__all__)
    stray = [
        name
        for name, obj in vars(package).items()
        if not name.startswith("_")
        and not inspect.ismodule(obj)
        and name not in advertised
    ]
    assert not stray, f"{package_name} exposes names missing from __all__: {sorted(stray)}"


def test_py_typed_marker_ships_with_the_package():
    marker = Path(repro.__file__).parent / "py.typed"
    assert marker.is_file(), "py.typed marker missing — typed API is unadvertised"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_no_duplicate_all_entries(package_name):
    package = importlib.import_module(package_name)
    names = list(package.__all__)
    assert len(names) == len(set(names)), f"duplicates in {package_name}.__all__"


def _walk_modules():
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(module_info.name)


def test_every_module_has_docstring():
    for module in _walk_modules():
        assert module.__doc__, f"module {module.__name__} lacks a docstring"


def test_public_classes_and_functions_documented():
    undocumented = []
    for module in _walk_modules():
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if obj.__doc__ is None:
                    undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"undocumented public symbols: {undocumented}"


def test_public_methods_documented():
    missing = []
    for module in _walk_modules():
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if not inspect.isclass(obj):
                continue
            for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited from elsewhere
                if method.__doc__ is None:
                    missing.append(f"{module.__name__}.{name}.{method_name}")
    assert not missing, f"undocumented public methods: {missing}"


def test_version_string():
    assert repro.__version__.count(".") == 2
