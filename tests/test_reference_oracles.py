"""Oracle tests: ALP/AMP vs slow brute-force reference implementations.

The forward scans are optimized and subtle (expiry, tentative starts,
cheapest-subset retries); these tests validate them against maximally
dumb O(m²) oracles that enumerate every candidate start time directly
from the definitions in docs/model.md.  Agreement across random
environments is the core correctness argument of the reproduction.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Resource, ResourceRequest, Slot, SlotList
from repro.core import alp, amp


def _alive(slot: Slot, request: ResourceRequest, at: float) -> bool:
    """Definition: slot can host a task of `request` starting at `at`."""
    if not request.admits_performance(slot.resource):
        return False
    if slot.start > at:
        return False
    return slot.end - at >= request.runtime_on(slot.resource)


def _oracle_alp_start(slots: SlotList, request: ResourceRequest) -> float | None:
    """Earliest start where N price-capped suited slots are alive."""
    for candidate in sorted({slot.start for slot in slots}):
        alive = [
            slot
            for slot in slots
            if _alive(slot, request, candidate) and request.admits_price(slot)
        ]
        if len(alive) >= request.node_count:
            return candidate
    return None


def _oracle_amp_start(slots: SlotList, request: ResourceRequest) -> float | None:
    """Earliest start where the N cheapest alive slots fit the budget."""
    budget = request.budget
    for candidate in sorted({slot.start for slot in slots}):
        alive = [slot for slot in slots if _alive(slot, request, candidate)]
        if len(alive) < request.node_count:
            continue
        costs = sorted(slot.cost_of(request.volume) for slot in alive)
        if sum(costs[: request.node_count]) <= budget:
            return candidate
    return None


def _random_slot_list(seed: int, count: int = 35) -> SlotList:
    rng = random.Random(seed)
    slots = []
    start = 0.0
    for i in range(count):
        if rng.random() > 0.4:
            start += rng.uniform(0.0, 10.0)
        node = Resource(
            f"n{i}", performance=rng.uniform(1.0, 3.0), price=rng.uniform(1.0, 6.0)
        )
        slots.append(Slot(node, start, start + rng.uniform(50.0, 300.0)))
    return SlotList(slots)


_request_strategy = st.builds(
    ResourceRequest,
    node_count=st.integers(min_value=1, max_value=5),
    volume=st.floats(min_value=10.0, max_value=200.0),
    min_performance=st.floats(min_value=1.0, max_value=2.0),
    max_price=st.floats(min_value=1.0, max_value=8.0),
)


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000), request=_request_strategy)
def test_alp_matches_oracle(seed, request):
    """ALP's window start (and feasibility) equals the brute-force
    earliest feasible start."""
    slots = _random_slot_list(seed)
    window = alp.find_window(slots, request)
    oracle = _oracle_alp_start(slots, request)
    if oracle is None:
        assert window is None
    else:
        assert window is not None
        assert window.start == oracle


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000), request=_request_strategy)
def test_amp_matches_oracle(seed, request):
    """AMP's window start equals the brute-force earliest budget-feasible
    start, and its cost matches the cheapest-N total there."""
    slots = _random_slot_list(seed)
    window = amp.find_window(slots, request)
    oracle = _oracle_amp_start(slots, request)
    if oracle is None:
        assert window is None
    else:
        assert window is not None
        assert window.start == oracle
        # The budget always holds.  Note AMP's cheapest-N is taken over
        # candidates alive at the *scan event* (the last added slot's
        # start), per the paper's step 2°-3°; cheaper slots that expire
        # between the final window start and that event are legitimately
        # not reconsidered, so cost-minimality at the window start is
        # NOT a property of AMP and is not asserted.
        assert window.cost <= request.budget + 1e-9


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_oracles_agree_on_ordering(seed):
    """Sanity of the oracles themselves: the AMP oracle never reports a
    later start than the ALP oracle (budget relaxes the per-slot cap
    when all performances are >= 1)."""
    slots = _random_slot_list(seed)
    request = ResourceRequest(node_count=2, volume=80.0, max_price=4.0)
    alp_start = _oracle_alp_start(slots, request)
    amp_start = _oracle_amp_start(slots, request)
    if alp_start is not None:
        assert amp_start is not None
        assert amp_start <= alp_start
