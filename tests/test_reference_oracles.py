"""Oracle tests: ALP/AMP vs slow brute-force reference implementations.

The forward scans are optimized and subtle (expiry, tentative starts,
cheapest-subset retries); these tests validate them against maximally
dumb O(m²) oracles that enumerate every candidate start time directly
from the definitions in docs/model.md.  Agreement across random
environments is the core correctness argument of the reproduction.

The second half of the module is the *differential* suite guarding the
indexed fast path (:class:`repro.core.index.SlotIndex`): the optimised
finders and the retained naive O(m)-rescan reference must produce
identical window sets — same alternatives, same pass counts, same
remaining slots — and identical phase-2 DP selections, across hundreds
of random instances.  This is the equivalence-testing policy of
docs/benchmarks.md: any future fast path must ship with tests of this
shape before it may become the default.

The third section is the *sharded-oracle* suite: the partition-parallel
search (:class:`repro.core.shard_search.ShardedSearchExecutor`) must be
byte-identical to the serial indexed path for **every** shard count —
the merge of the per-shard filtered streams replays the serial candidate
loop float-op for float-op, so the fingerprints compare with ``==``, not
``approx``.  The churn scenario additionally drives the executor through
the PR 3 revocation life cycle (commit / revoke / re-insert with carried
hints) against a live :class:`SlotIndex`.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Criterion,
    Resource,
    ResourceRequest,
    ShardedSearchExecutor,
    Slot,
    SlotIndex,
    SlotList,
    SlotSearchAlgorithm,
    find_alternatives,
    minimize_cost,
    minimize_time,
    time_quota,
    vo_budget,
)
from repro.core import alp, amp

from tests.conftest import make_random_batch, make_random_request, make_random_slot_list


def _alive(slot: Slot, request: ResourceRequest, at: float) -> bool:
    """Definition: slot can host a task of `request` starting at `at`."""
    if not request.admits_performance(slot.resource):
        return False
    if slot.start > at:
        return False
    return slot.end - at >= request.runtime_on(slot.resource)


def _oracle_alp_start(slots: SlotList, request: ResourceRequest) -> float | None:
    """Earliest start where N price-capped suited slots are alive."""
    for candidate in sorted({slot.start for slot in slots}):
        alive = [
            slot
            for slot in slots
            if _alive(slot, request, candidate) and request.admits_price(slot)
        ]
        if len(alive) >= request.node_count:
            return candidate
    return None


def _oracle_amp_start(slots: SlotList, request: ResourceRequest) -> float | None:
    """Earliest start where the N cheapest alive slots fit the budget."""
    budget = request.budget
    for candidate in sorted({slot.start for slot in slots}):
        alive = [slot for slot in slots if _alive(slot, request, candidate)]
        if len(alive) < request.node_count:
            continue
        costs = sorted(slot.cost_of(request.volume) for slot in alive)
        if sum(costs[: request.node_count]) <= budget:
            return candidate
    return None


# The instance generator now lives in tests/conftest.py so the property
# suite can reuse it; the local alias keeps the oracle tests readable.
_random_slot_list = make_random_slot_list


_request_strategy = st.builds(
    ResourceRequest,
    node_count=st.integers(min_value=1, max_value=5),
    volume=st.floats(min_value=10.0, max_value=200.0),
    min_performance=st.floats(min_value=1.0, max_value=2.0),
    max_price=st.floats(min_value=1.0, max_value=8.0),
)


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000), request=_request_strategy)
def test_alp_matches_oracle(seed, request):
    """ALP's window start (and feasibility) equals the brute-force
    earliest feasible start."""
    slots = _random_slot_list(seed)
    window = alp.find_window(slots, request)
    oracle = _oracle_alp_start(slots, request)
    if oracle is None:
        assert window is None
    else:
        assert window is not None
        assert window.start == oracle


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000), request=_request_strategy)
def test_amp_matches_oracle(seed, request):
    """AMP's window start equals the brute-force earliest budget-feasible
    start, and its cost matches the cheapest-N total there."""
    slots = _random_slot_list(seed)
    window = amp.find_window(slots, request)
    oracle = _oracle_amp_start(slots, request)
    if oracle is None:
        assert window is None
    else:
        assert window is not None
        assert window.start == oracle
        # The budget always holds.  Note AMP's cheapest-N is taken over
        # candidates alive at the *scan event* (the last added slot's
        # start), per the paper's step 2°-3°; cheaper slots that expire
        # between the final window start and that event are legitimately
        # not reconsidered, so cost-minimality at the window start is
        # NOT a property of AMP and is not asserted.
        assert window.cost <= request.budget + 1e-9


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_oracles_agree_on_ordering(seed):
    """Sanity of the oracles themselves: the AMP oracle never reports a
    later start than the ALP oracle (budget relaxes the per-slot cap
    when all performances are >= 1)."""
    slots = _random_slot_list(seed)
    request = ResourceRequest(node_count=2, volume=80.0, max_price=4.0)
    alp_start = _oracle_alp_start(slots, request)
    amp_start = _oracle_amp_start(slots, request)
    if alp_start is not None:
        assert amp_start is not None
        assert amp_start <= alp_start


# --------------------------------------------------------------------- #
# Differential tests: indexed fast path vs naive O(m)-rescan reference  #
# --------------------------------------------------------------------- #

#: 100 seeds × 2 algorithms = 200 random multi-pass instances, plus the
#: rho-scaled and single-find variants below.
DIFF_SEEDS = range(100)


def _window_fingerprint(window):
    """A window's identity: synchronous start + exact placements.

    Resources are shared objects between the two search paths (both read
    the same input list), so uids are comparable; starts/ends/prices must
    be bit-equal, which is the contract the indexed path promises.
    """
    return (
        window.start,
        tuple(
            (a.resource.uid, a.start, a.end, a.source.price)
            for a in window.allocations
        ),
    )


def _search_fingerprint(result):
    """Everything a SearchResult determines, in comparable form."""
    return {
        "alternatives": {
            job.name: [_window_fingerprint(w) for w in windows]
            for job, windows in result.alternatives.items()
        },
        "passes": result.passes,
        "remaining": sorted(
            (s.resource.uid, s.start, s.end, s.price) for s in result.remaining_slots
        ),
    }


def _combination_fingerprint(combination):
    return {
        job.name: _window_fingerprint(window)
        for job, window in combination.selection.items()
    }


def _both_paths(seed: int, algorithm: SlotSearchAlgorithm, *, rho: float = 1.0):
    slots = make_random_slot_list(seed, count=40)
    batch = make_random_batch(seed)
    naive = find_alternatives(slots, batch, algorithm, rho=rho, use_index=False)
    indexed = find_alternatives(slots, batch, algorithm, rho=rho, use_index=True)
    return naive, indexed


@pytest.mark.parametrize(
    "algorithm", [SlotSearchAlgorithm.ALP, SlotSearchAlgorithm.AMP], ids=["alp", "amp"]
)
def test_indexed_search_matches_reference(algorithm):
    """The indexed multi-pass search is window-for-window identical to
    the naive-rescan reference across 100 random instances each."""
    for seed in DIFF_SEEDS:
        naive, indexed = _both_paths(seed, algorithm)
        assert _search_fingerprint(indexed) == _search_fingerprint(naive), (
            f"divergence on seed={seed} algorithm={algorithm.value}"
        )


@pytest.mark.parametrize("rho", [0.8, 0.5])
def test_indexed_search_matches_reference_scaled_budget(rho):
    """Equivalence holds under the Section 6 budget-shrink extension."""
    for seed in range(40):
        naive, indexed = _both_paths(seed, SlotSearchAlgorithm.AMP, rho=rho)
        assert _search_fingerprint(indexed) == _search_fingerprint(naive), (
            f"divergence on seed={seed} rho={rho}"
        )


@pytest.mark.parametrize(
    "objective", [Criterion.TIME, Criterion.COST], ids=["time", "cost"]
)
def test_indexed_search_matches_phase2_selection(objective):
    """Identical alternatives must produce identical DP selections.

    Beyond asserting equal phase-1 output, run the phase-2 dynamic
    programming over both paths' alternatives and require the *chosen
    combinations* to coincide — the end-to-end guarantee the experiment
    engine relies on.
    """
    checked = 0
    for seed in DIFF_SEEDS:
        for algorithm in (SlotSearchAlgorithm.ALP, SlotSearchAlgorithm.AMP):
            naive, indexed = _both_paths(seed, algorithm)
            if not naive.all_jobs_covered():
                continue
            quota = time_quota(naive.alternatives)
            try:
                if objective is Criterion.TIME:
                    budget = vo_budget(naive.alternatives, quota)
                    chosen_naive = minimize_time(naive.alternatives, budget)
                    chosen_indexed = minimize_time(indexed.alternatives, budget)
                else:
                    chosen_naive = minimize_cost(naive.alternatives, quota)
                    chosen_indexed = minimize_cost(indexed.alternatives, quota)
            except Exception:
                continue
            assert _combination_fingerprint(chosen_indexed) == _combination_fingerprint(
                chosen_naive
            ), f"phase-2 divergence on seed={seed} algorithm={algorithm.value}"
            checked += 1
    assert checked >= 20, f"too few covered instances exercised ({checked})"


def test_indexed_single_find_matches_reference_finders():
    """SlotIndex.find_{alp,amp}_window equal alp/amp.find_window on the
    same list — including the exact float fields of every placement."""
    for seed in range(120):
        slots = make_random_slot_list(seed, count=40)
        rng = random.Random(seed * 31 + 7)
        request = make_random_request(rng)
        index = SlotIndex(slots)

        reference = alp.find_window(slots, request)
        fast = index.find_alp_window(request)
        assert (reference is None) == (fast is None), f"ALP feasibility, seed={seed}"
        if reference is not None:
            assert _window_fingerprint(fast) == _window_fingerprint(reference)

        reference = amp.find_window(slots, request)
        fast = index.find_amp_window(request)
        assert (reference is None) == (fast is None), f"AMP feasibility, seed={seed}"
        if reference is not None:
            assert _window_fingerprint(fast) == _window_fingerprint(reference)


def test_indexed_find_with_stale_hints_after_reinsertion():
    """Re-inserted vacant time breaks start-hint monotonicity; the clamp
    must keep hinted finds identical to a fresh reference scan.

    Models the hot-swap/outage life cycle: windows are committed (and a
    ``start_hint`` carried forward, as the multi-pass search does), then
    an *older* window is revoked and its spans re-inserted — so the
    carried hint is now strictly past vacant time that can host an
    earlier window.  Without :class:`SlotIndex`'s hint clamping the
    indexed finder would skip it and diverge from the reference scan of
    the same materialised list.
    """
    churned = 0
    for seed in range(60):
        slots = make_random_slot_list(seed, count=30)
        rng = random.Random(seed * 17 + 3)
        request = make_random_request(rng)
        index = SlotIndex(slots)
        hint = float("-inf")
        committed: list = []
        for _ in range(5):
            window = index.find_alp_window(request, start_hint=hint)
            reference = alp.find_window(index.slot_list(), request)
            assert (window is None) == (reference is None), f"seed={seed}"
            if window is None:
                break
            assert _window_fingerprint(window) == _window_fingerprint(reference), (
                f"divergence on seed={seed}"
            )
            index.commit(window)
            committed.append(window)
            hint = window.start
            if len(committed) > 1 and rng.random() < 0.6:
                revoked = committed.pop(0)
                for allocation in revoked.allocations:
                    index.insert(
                        Slot(
                            allocation.resource,
                            allocation.start,
                            allocation.end,
                            allocation.unit_price,
                        )
                    )
                churned += 1
    assert churned >= 10, f"too few revocation churns exercised ({churned})"


# --------------------------------------------------------------------- #
# Sharded-oracle suite: partition-parallel search vs serial indexed     #
# --------------------------------------------------------------------- #

#: Shard counts under test: the serial degenerate case, even and odd
#: splits, a count matching typical core counts, and one *larger than
#: some instances' node sets* (trailing empty shards must be harmless).
SHARD_COUNTS = [1, 2, 3, 4, 7]

SHARD_SEEDS = range(25)


def _sharded_fingerprints(
    seed: int,
    algorithm: SlotSearchAlgorithm,
    shards: int,
    *,
    rho: float = 1.0,
    processes: bool | None = None,
):
    """(serial indexed, sharded) search fingerprints of one instance."""
    slots = make_random_slot_list(seed, count=40)
    batch = make_random_batch(seed)
    serial = find_alternatives(slots, batch, algorithm, rho=rho, use_index=True)
    sharded = find_alternatives(
        slots,
        batch,
        algorithm,
        rho=rho,
        use_index=True,
        shards=shards,
        shard_processes=processes if shards > 1 else None,
    )
    return _search_fingerprint(serial), _search_fingerprint(sharded)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize(
    "algorithm", [SlotSearchAlgorithm.ALP, SlotSearchAlgorithm.AMP], ids=["alp", "amp"]
)
def test_sharded_search_matches_serial(algorithm, shards):
    """``find_alternatives(..., shards=N)`` is byte-identical to the
    serial indexed search for every tested N — same alternatives, same
    pass counts, same remaining slots, bit-equal floats throughout."""
    for seed in SHARD_SEEDS:
        serial, sharded = _sharded_fingerprints(seed, algorithm, shards)
        assert sharded == serial, (
            f"divergence on seed={seed} algorithm={algorithm.value} shards={shards}"
        )


@pytest.mark.parametrize(
    "algorithm", [SlotSearchAlgorithm.ALP, SlotSearchAlgorithm.AMP], ids=["alp", "amp"]
)
def test_sharded_search_matches_serial_across_processes(algorithm):
    """Worker *processes* change nothing: the master's merge restores the
    global scan order regardless of how the OS schedules the shards."""
    for seed in range(4):
        serial, sharded = _sharded_fingerprints(seed, algorithm, 3, processes=True)
        assert sharded == serial, f"divergence on seed={seed} (process mode)"


def test_sharded_search_matches_serial_scaled_budget():
    """Equivalence survives the Section 6 budget shrink (rho < 1)."""
    for seed in range(15):
        serial, sharded = _sharded_fingerprints(
            seed, SlotSearchAlgorithm.AMP, 4, rho=0.5
        )
        assert sharded == serial, f"divergence on seed={seed} rho=0.5"


def test_sharded_executor_matches_index_under_revocation_churn():
    """The stale-hint revocation scenario, replayed against the executor.

    The same commit/revoke/re-insert life cycle as
    ``test_indexed_find_with_stale_hints_after_reinsertion``, but driving
    a 3-shard :class:`ShardedSearchExecutor` in lockstep with a serial
    :class:`SlotIndex`: every hinted find, every ``hint_skippable``
    count, and the final materialised slot list must agree exactly —
    including after re-inserted spans land on whichever shard owns the
    revoked node.
    """
    churned = 0
    for seed in range(40):
        slots = make_random_slot_list(seed, count=30)
        rng = random.Random(seed * 17 + 3)
        request = make_random_request(rng)
        index = SlotIndex(slots)
        with ShardedSearchExecutor(slots, 3) as executor:
            hint = float("-inf")
            committed: list = []
            for _ in range(5):
                assert executor.hint_skippable(hint) == index.hint_skippable(hint)
                reference = index.find_alp_window(request, start_hint=hint)
                sharded = executor.find_alp_window(request, start_hint=hint)
                assert (sharded is None) == (reference is None), f"seed={seed}"
                if reference is None:
                    break
                assert _window_fingerprint(sharded) == _window_fingerprint(
                    reference
                ), f"divergence on seed={seed}"
                index.commit(reference)
                executor.commit(sharded)
                committed.append(reference)
                hint = reference.start
                if len(committed) > 1 and rng.random() < 0.6:
                    revoked = committed.pop(0)
                    for allocation in revoked.allocations:
                        replacement = Slot(
                            allocation.resource,
                            allocation.start,
                            allocation.end,
                            allocation.unit_price,
                        )
                        index.insert(replacement)
                        executor.insert(replacement)
                    churned += 1
            remaining = sorted(
                (s.resource.uid, s.start, s.end, s.price)
                for s in executor.slot_list()
            )
            expected = sorted(
                (s.resource.uid, s.start, s.end, s.price) for s in index.slot_list()
            )
            assert remaining == expected, f"slot lists diverged on seed={seed}"
    assert churned >= 8, f"too few revocation churns exercised ({churned})"


def test_sharded_executor_amp_event_hints_match_index():
    """AMP's event-time hints (``find_amp_window_at``) round-trip through
    the executor identically — the hint the multi-pass search carries is
    the accepting event time, not the window start."""
    for seed in range(20):
        slots = make_random_slot_list(seed, count=30)
        rng = random.Random(seed * 13 + 5)
        request = make_random_request(rng)
        index = SlotIndex(slots)
        with ShardedSearchExecutor(slots, 4) as executor:
            hint = float("-inf")
            for _ in range(4):
                reference = index.find_amp_window_at(request, start_hint=hint)
                sharded = executor.find_amp_window_at(request, start_hint=hint)
                assert (sharded is None) == (reference is None), f"seed={seed}"
                if reference is None:
                    break
                assert _window_fingerprint(sharded[0]) == _window_fingerprint(
                    reference[0]
                ), f"divergence on seed={seed}"
                assert sharded[1] == reference[1], f"event time, seed={seed}"
                index.commit(reference[0])
                executor.commit(sharded[0])
                hint = reference[1]

# --------------------------------------------------------------------- #
# Column-path oracle: vectorized masks vs scalar fallback               #
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "algorithm", [SlotSearchAlgorithm.ALP, SlotSearchAlgorithm.AMP], ids=["alp", "amp"]
)
def test_column_scalar_fallback_matches_vectorized(algorithm, monkeypatch):
    """The numpy-less scalar kernel is a drop-in for the vectorized masks.

    :mod:`repro.core.columns` builds survivor memos through numpy masks
    when available and through the scalar :func:`static_survivor` kernel
    otherwise; the indexed search must not care which one ran.  Disable
    numpy for the module and require byte-identical multi-pass results —
    this is the column-path analogue of the indexed-vs-naive suite above.
    """
    import repro.core.columns as columns_module

    for seed in range(40):
        # One instance, three runs: resource uids are minted per slot
        # list, so all paths must scan the *same* objects to compare.
        slots = make_random_slot_list(seed, count=40)
        batch = make_random_batch(seed)
        naive = find_alternatives(slots, batch, algorithm, use_index=False)
        vectorized = find_alternatives(slots, batch, algorithm, use_index=True)
        with monkeypatch.context() as patch:
            patch.setattr(columns_module, "_np", None)
            scalar = find_alternatives(slots, batch, algorithm, use_index=True)
        assert _search_fingerprint(scalar) == _search_fingerprint(vectorized), (
            f"scalar fallback diverged from vectorized on seed={seed}"
        )
        assert _search_fingerprint(scalar) == _search_fingerprint(naive), (
            f"scalar fallback diverged from naive reference on seed={seed}"
        )


def test_column_scalar_fallback_matches_serial_sharded(monkeypatch):
    """Shard workers share the column kernels; the fallback must keep the
    sharded merge byte-identical to the serial indexed path too."""
    import repro.core.columns as columns_module

    monkeypatch.setattr(columns_module, "_np", None)
    for seed in range(10):
        for algorithm in (SlotSearchAlgorithm.ALP, SlotSearchAlgorithm.AMP):
            serial, sharded = _sharded_fingerprints(seed, algorithm, 3)
            assert sharded == serial, (
                f"divergence on seed={seed} algorithm={algorithm.value} (no numpy)"
            )
