"""Fault-injection and recovery tests (repro.grid.resilience).

Covers the failure generator's determinism contracts, the recovery
ladder (hot-swap → re-search → backoff resubmission → typed rejection),
the event-driver scenarios the ISSUE names (tick-boundary outage,
co-allocated all-node revocation, retry exhaustion), the hypothesis
property that recovery never violates the ALP per-slot or AMP budget
constraints, and the experiment engine's worker-count invariance with
failures enabled.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchScheduler,
    Criterion,
    InfeasiblePolicy,
    InvalidRequestError,
    Job,
    RecoveryExhaustedError,
    ResourceRequest,
    SchedulerConfig,
    SlotSearchAlgorithm,
)
from repro.grid import (
    Cluster,
    ComputeNode,
    FailureConfig,
    FailureGenerator,
    JobState,
    Metascheduler,
    RecoveryManager,
    RecoveryOutcome,
    RetryPolicy,
    SimulationDriver,
    VOEnvironment,
    apply_slot_outages,
    derive_node_seed,
)
from repro.sim import ExperimentConfig, ParallelRunner

from tests.conftest import make_random_slot_list


def _environment(node_count: int = 4) -> VOEnvironment:
    nodes = [
        ComputeNode(f"n{i}", performance=1.0, price=1.0) for i in range(node_count)
    ]
    return VOEnvironment([Cluster("c", nodes)])


def _meta(
    environment: VOEnvironment | None = None,
    *,
    recovery: RetryPolicy | RecoveryManager | None = None,
    algorithm: SlotSearchAlgorithm = SlotSearchAlgorithm.AMP,
) -> Metascheduler:
    scheduler = BatchScheduler(
        SchedulerConfig(algorithm=algorithm, infeasible_policy=InfeasiblePolicy.EARLIEST)
    )
    return Metascheduler(
        environment or _environment(),
        scheduler,
        period=50.0,
        horizon=400.0,
        recovery=recovery,
    )


class TestFailureGenerator:
    def test_config_validation(self):
        with pytest.raises(InvalidRequestError):
            FailureConfig(mtbf=0.0)
        with pytest.raises(InvalidRequestError):
            FailureConfig(mttr=-1.0)

    def test_stream_is_deterministic(self):
        generator = FailureGenerator(FailureConfig(mtbf=500.0, mttr=50.0, seed=9))
        first = list(generator.stream("n0", 0.0, 10_000.0))
        second = list(generator.stream("n0", 0.0, 10_000.0))
        assert first == second
        assert first  # 10k units at mtbf 500 essentially always fails

    def test_streams_independent_per_node(self):
        generator = FailureGenerator(FailureConfig(mtbf=500.0, mttr=50.0, seed=9))
        a = list(generator.stream("n0", 0.0, 10_000.0))
        b = list(generator.stream("n1", 0.0, 10_000.0))
        assert a != b

    def test_outages_ordered_and_disjoint(self):
        generator = FailureGenerator(FailureConfig(mtbf=100.0, mttr=200.0, seed=4))
        outages = list(generator.stream("n0", 0.0, 20_000.0))
        for earlier, later in zip(outages, outages[1:]):
            assert earlier.end <= later.start

    def test_node_seed_depends_on_salt_and_name(self):
        assert derive_node_seed(1, "n0") == derive_node_seed(1, "n0")
        assert derive_node_seed(1, "n0") != derive_node_seed(2, "n0")
        assert derive_node_seed(1, "n0") != derive_node_seed(1, "n1")
        assert derive_node_seed(1, "n0") != derive_node_seed(1, "n0", salt=1)

    def test_driver_schedule_count_matches_streams(self):
        environment = _environment(3)
        driver = SimulationDriver(_meta(environment))
        config = FailureConfig(mtbf=300.0, mttr=30.0, seed=5)
        count = driver.add_failures(config, 0.0, 5000.0)
        expected = sum(
            len(list(FailureGenerator(config).stream(node.name, 0.0, 5000.0)))
            for node in environment.nodes()
        )
        assert count == expected > 0


class TestApplySlotOutages:
    def test_pure_function_of_inputs(self):
        slots = make_random_slot_list(3, count=20)
        config = FailureConfig(mtbf=100.0, mttr=40.0, seed=2)
        first = apply_slot_outages(slots, config, salt=7)
        second = apply_slot_outages(slots, config, salt=7)
        assert [(s.resource.name, s.start, s.end, s.price) for s in first] == [
            (s.resource.name, s.start, s.end, s.price) for s in second
        ]

    def test_salt_changes_the_carving(self):
        slots = make_random_slot_list(3, count=20)
        config = FailureConfig(mtbf=100.0, mttr=40.0, seed=2)
        a = apply_slot_outages(slots, config, salt=1)
        b = apply_slot_outages(slots, config, salt=2)
        assert [(s.start, s.end) for s in a] != [(s.start, s.end) for s in b]

    def test_only_removes_vacant_time(self):
        slots = make_random_slot_list(5, count=15)
        config = FailureConfig(mtbf=60.0, mttr=60.0, seed=1)
        degraded = apply_slot_outages(slots, config)
        total_before = sum(s.end - s.start for s in slots)
        total_after = sum(s.end - s.start for s in degraded)
        assert total_after < total_before
        # Every degraded slot is a sub-span of some original slot of the
        # same resource at the same price.
        originals = [(s.resource.uid, s.start, s.end, s.price) for s in slots]
        for piece in degraded:
            assert any(
                piece.resource.uid == uid
                and piece.start >= start
                and piece.end <= end
                and piece.price == price
                for uid, start, end, price in originals
            )

    def test_empty_list_passthrough(self):
        from repro.core import SlotList

        config = FailureConfig(mtbf=10.0, mttr=10.0, seed=0)
        assert len(apply_slot_outages(SlotList(), config)) == 0


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(InvalidRequestError):
            RetryPolicy(max_revocations=-1)
        with pytest.raises(InvalidRequestError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(InvalidRequestError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(InvalidRequestError):
            RetryPolicy(backoff_base=100.0, backoff_cap=10.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=10.0, backoff_factor=2.0, backoff_cap=35.0)
        assert policy.delay(1) == 10.0
        assert policy.delay(2) == 20.0
        assert policy.delay(3) == 35.0  # capped
        assert RetryPolicy(backoff_base=0.0).delay(5) == 0.0


class TestHotSwapRecovery:
    def test_hot_swap_majority_same_tick(self):
        """The ISSUE's recovery demo: with recovery on, >= 50 % of the
        revoked jobs are rescheduled by hot-swap in the *same event*;
        resubmit-only recovers 0 % same-tick."""

        def run(with_recovery: bool):
            meta = _meta(
                _environment(4),
                recovery=RetryPolicy() if with_recovery else None,
            )
            jobs = [
                Job(ResourceRequest(1, 60.0, max_price=3.0), name=f"g{i}")
                for i in range(2)
            ]
            for job in jobs:
                meta.submit(job)
            meta.run_iteration(0.0)
            revoked = 0
            for job in jobs:
                record = meta.trace.record_for(job)
                assert record.state is JobState.SCHEDULED
                victim = meta.environment.node_for(
                    record.window.allocations[0].resource.uid
                )
                meta.inject_outage(victim, record.window.start, record.window.end)
                revoked += 1
            return meta, revoked

        meta, revoked = run(with_recovery=True)
        counts = meta.recovery.outcome_counts()
        assert revoked == 2
        assert counts["hot_swap"] / revoked >= 0.5
        same_tick = [r for r in meta.trace if r.recoveries > 0]
        assert len(same_tick) >= 1
        for record in same_tick:
            assert record.state is JobState.SCHEDULED
            assert record.resubmissions == 0

        baseline, revoked = run(with_recovery=False)
        assert revoked == 2
        # Resubmit-only: nothing is rescheduled inside the outage event.
        assert all(record.recoveries == 0 for record in baseline.trace)
        assert all(
            record.state is JobState.PENDING
            for record in baseline.trace
            if record.resubmissions > 0
        )

    def test_hot_swap_window_is_committed_and_consistent(self):
        meta = _meta(_environment(3), recovery=RetryPolicy())
        job = Job(ResourceRequest(1, 50.0, max_price=3.0), name="g1")
        meta.submit(job)
        meta.run_iteration(0.0)
        record = meta.trace.record_for(job)
        old_window = record.window
        victim = meta.environment.node_for(old_window.allocations[0].resource.uid)
        meta.inject_outage(victim, old_window.start, old_window.end)
        assert record.state is JobState.SCHEDULED
        assert record.recoveries == 1
        assert record.window != old_window
        # The new window satisfies the request and is really reserved.
        assert record.window.satisfies(job.request, budget=job.request.budget)
        assert meta.environment.cancel_job("g1") == 1

    def test_co_allocated_job_loses_all_nodes_and_recovers(self):
        """Losing one node kills the whole co-allocation; recovery must
        recommit a complete synchronous window, not a partial one."""
        meta = _meta(_environment(3), recovery=RetryPolicy())
        job = Job(ResourceRequest(3, 60.0, max_price=3.0), name="wide")
        meta.submit(job)
        meta.run_iteration(0.0)
        record = meta.trace.record_for(job)
        window = record.window
        assert window.slots_number == 3
        victim = meta.environment.node_for(window.allocations[0].resource.uid)
        # Outage clipping only the start of the window on ONE node.
        meta.inject_outage(victim, window.start, window.start + 10.0)
        assert record.state is JobState.SCHEDULED
        assert record.recoveries == 1
        new_window = record.window
        assert new_window.slots_number == 3
        starts = {allocation.start for allocation in new_window.allocations}
        assert len(starts) == 1  # still synchronous
        # All three nodes hold exactly the new reservations.
        assert meta.environment.cancel_job("wide") == 3

    def test_research_used_when_alternatives_are_dead(self):
        # Single node, phase 1 capped at 2 alternatives: the outage
        # covers the chosen window AND the only retained alternative, so
        # hot-swap misses, but an immediate re-search still finds the
        # vacancy past the outage — no queue round trip.
        scheduler = BatchScheduler(
            SchedulerConfig(
                infeasible_policy=InfeasiblePolicy.EARLIEST,
                max_alternatives_per_job=2,
            )
        )
        meta = Metascheduler(
            _environment(1),
            scheduler,
            period=50.0,
            horizon=400.0,
            recovery=RetryPolicy(),
        )
        job = Job(ResourceRequest(1, 50.0, max_price=3.0), name="g1")
        meta.submit(job)
        meta.run_iteration(0.0)
        record = meta.trace.record_for(job)
        node = meta.environment.node_for(record.window.allocations[0].resource.uid)
        # Both the chosen [0, 50) and the retained [50, 100) windows
        # overlap the outage; single node => nothing to hot-swap to.
        meta.inject_outage(node, 0.0, 120.0)
        assert record.state is JobState.SCHEDULED
        assert record.recoveries == 1
        assert record.window.start >= 120.0
        counts = meta.recovery.outcome_counts()
        assert counts["research"] == 1
        assert counts["hot_swap"] == 0


class TestRetryExhaustion:
    def test_back_to_back_outages_hit_typed_rejection(self):
        meta = _meta(_environment(2), recovery=RetryPolicy(max_revocations=1))
        job = Job(ResourceRequest(1, 50.0, max_price=3.0), name="g1")
        meta.submit(job)
        meta.run_iteration(0.0)
        record = meta.trace.record_for(job)
        # First revocation: within budget, recovers in place.
        first_node = meta.environment.node_for(
            record.window.allocations[0].resource.uid
        )
        meta.inject_outage(first_node, record.window.start, record.window.end)
        assert record.state is JobState.SCHEDULED
        # Second revocation: budget (1) exhausted -> typed rejection.
        second_node = meta.environment.node_for(
            record.window.allocations[0].resource.uid
        )
        resubmitted = meta.inject_outage(
            second_node, record.window.start, record.window.end
        )
        assert resubmitted == []
        assert record.state is JobState.REJECTED
        assert record.window is None
        assert job not in meta.pending_jobs()
        event = meta.recovery.events[-1]
        assert event.outcome is RecoveryOutcome.REJECT
        assert isinstance(event.error, RecoveryExhaustedError)
        assert event.error.job_name == "g1"
        assert event.error.revocations == 2
        assert event.error.limit == 1
        # The drop is surfaced in the next tick's report.
        report = meta.run_iteration(50.0)
        assert report.recovery_rejections == 1
        assert report.revocations == 2

    def test_no_livelock_under_persistent_outages(self):
        """Bounded budget: a node that keeps failing can only revoke a
        job ``max_revocations + 1`` times before it is dropped."""
        meta = _meta(_environment(1), recovery=RetryPolicy(max_revocations=2))
        job = Job(ResourceRequest(1, 50.0, max_price=3.0), name="g1")
        meta.submit(job)
        node = next(meta.environment.nodes())
        now = 0.0
        for _ in range(20):
            meta.run_iteration(now)
            record = meta.trace.record_for(job)
            if record.state is JobState.REJECTED:
                break
            if record.state is JobState.SCHEDULED:
                meta.inject_outage(node, record.window.start, record.window.end)
            now += meta.period
        assert meta.trace.record_for(job).state is JobState.REJECTED
        assert meta.recovery.revocations(job) == 3  # budget 2, third strike

    def test_backoff_delays_requeue(self):
        meta = _meta(
            _environment(1),
            recovery=RetryPolicy(backoff_base=120.0, backoff_factor=2.0),
        )
        job = Job(ResourceRequest(1, 50.0, max_price=3.0), name="g1")
        meta.submit(job)
        meta.run_iteration(0.0)
        record = meta.trace.record_for(job)
        node = next(meta.environment.nodes())
        # Outage covering the whole horizon: no hot-swap, no re-search.
        meta.inject_outage(node, 0.0, 500.0)
        assert record.state is JobState.PENDING
        event = meta.recovery.events[-1]
        assert event.outcome is RecoveryOutcome.RESUBMIT
        assert event.delay == 120.0
        # Before the delay elapses the job is not in the pending queue.
        assert meta.pending_jobs() == []
        meta.run_iteration(50.0)
        assert meta.trace.record_for(job).state is JobState.PENDING
        # Once the backoff expires, it re-enters the batch cycle.
        report = meta.run_iteration(150.0)
        assert report.batch_size == 1


class TestTickBoundaryOutage:
    def test_outage_at_tick_time_fires_before_the_tick(self):
        meta = _meta(_environment(2))
        job = Job(ResourceRequest(1, 200.0, max_price=3.0), name="g1")
        meta.submit(job)
        meta.run_iteration(0.0)
        record = meta.trace.record_for(job)
        victim = meta.environment.node_for(record.window.allocations[0].resource.uid)
        driver = SimulationDriver(meta)
        driver.add_ticks(50.0, 100.0)
        driver.add_outage(victim, 50.0, 30.0)  # exactly on the tick
        events = driver.run()
        assert [event.kind.name for event in events[:2]] == ["OUTAGE", "TICK"]
        # The tick sharing the outage's timestamp already reports it and
        # (resubmit path) may reschedule the revoked job immediately.
        tick_report = events[1].report
        assert tick_report.time == 50.0
        assert tick_report.revocations == 1
        assert record.resubmissions == 1


class TestRecoveryManagerUnit:
    def test_retain_excludes_chosen_and_prunes_by_time(self):
        from repro.core import SlotIndex

        slots = make_random_slot_list(11, count=30)
        index = SlotIndex(slots)
        request = ResourceRequest(1, 50.0, max_price=5.0)
        windows = []
        for _ in range(3):
            window = index.find_alp_window(request)
            if window is None:
                break
            index.commit(window)
            windows.append(window)
        assert len(windows) >= 2
        job = Job(request, name="j")
        manager = RecoveryManager()
        manager.retain(job, windows, windows[0])
        assert windows[0] not in manager.retained(job)
        assert len(manager.retained(job)) == len(windows) - 1
        # Prune everything starting before a far-future time.
        manager.prune(1e12)
        assert manager.retained(job) == []

    def test_exhausted_only_past_the_budget(self):
        manager = RecoveryManager(RetryPolicy(max_revocations=1))
        job = Job(ResourceRequest(1, 10.0, max_price=2.0), name="j")
        assert manager.exhausted(job) is None
        manager.register_revocation(job)
        assert manager.exhausted(job) is None
        manager.register_revocation(job)
        error = manager.exhausted(job)
        assert isinstance(error, RecoveryExhaustedError)
        assert (error.job_name, error.revocations, error.limit) == ("j", 2, 1)

    def test_unlimited_budget_never_exhausts(self):
        manager = RecoveryManager(RetryPolicy(max_revocations=None))
        job = Job(ResourceRequest(1, 10.0, max_price=2.0), name="j")
        for _ in range(10):
            manager.register_revocation(job)
        assert manager.exhausted(job) is None


@pytest.mark.parametrize(
    "algorithm",
    [SlotSearchAlgorithm.ALP, SlotSearchAlgorithm.AMP],
    ids=["alp", "amp"],
)
@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_recovery_never_violates_constraints(algorithm, seed):
    """Property: however outages interleave, every window a job ends up
    holding — committed, hot-swapped, or re-searched — satisfies its
    request's constraints (per-slot price cap for ALP, aggregate budget
    for AMP) and the synchronous-start co-allocation contract."""
    import random

    from repro.sim import JobGenerator

    environment = _environment(5)
    meta = _meta(
        environment,
        recovery=RetryPolicy(max_revocations=2, backoff_base=25.0),
        algorithm=algorithm,
    )
    generator = JobGenerator(seed=seed)
    rng = random.Random(seed)
    for index in range(5):
        meta.submit(
            Job(generator.generate_request(), name=f"j{index}"),
            at_time=rng.uniform(0.0, 400.0),
        )
    driver = SimulationDriver(meta)
    driver.add_ticks(0.0, 1000.0)
    driver.add_failures(FailureConfig(mtbf=400.0, mttr=60.0, seed=seed), 0.0, 1000.0)
    driver.run()
    rho = meta.scheduler.config.rho
    for record in meta.trace:
        if record.state not in (JobState.SCHEDULED, JobState.COMPLETED):
            assert record.state is not JobState.REJECTED or record.window is None
            continue
        if record.window is None:
            continue
        request = record.job.request
        if algorithm is SlotSearchAlgorithm.AMP:
            assert record.window.satisfies(request, budget=request.scaled_budget(rho))
        else:
            assert record.window.satisfies(request)


class TestExperimentEngineFailures:
    CONFIG = ExperimentConfig(
        objective=Criterion.TIME,
        iterations=16,
        seed=4242,
        resolution=300,
        failures=FailureConfig(mtbf=400.0, mttr=60.0, seed=11),
    )

    def test_failures_change_the_series(self):
        plain = ExperimentConfig(
            objective=Criterion.TIME, iterations=16, seed=4242, resolution=300
        )
        degraded = ParallelRunner(self.CONFIG, workers=1).run()
        baseline = ParallelRunner(plain, workers=1).run()
        assert degraded.total_slots_processed != baseline.total_slots_processed

    def test_workers_invariant_with_failures(self):
        """The CI contract: with failure injection on, the sharded run
        merges byte-identical to the serial one."""
        serial = ParallelRunner(self.CONFIG, workers=1).run()
        parallel = ParallelRunner(self.CONFIG, workers=4).run()

        def document(result) -> str:
            return json.dumps(
                {
                    "samples": [asdict(sample) for sample in result.samples],
                    "attempted": result.attempted,
                    "dropped_uncovered": result.dropped_uncovered,
                    "dropped_infeasible": result.dropped_infeasible,
                    "total_slots_processed": result.total_slots_processed,
                    "total_jobs_attempted": result.total_jobs_attempted,
                },
                sort_keys=True,
            )

        assert document(parallel) == document(serial)

    def test_streamed_runner_applies_failures_deterministically(self):
        from repro.sim import ExperimentRunner

        first = ExperimentRunner(self.CONFIG).run()
        second = ExperimentRunner(self.CONFIG).run()
        assert first.total_slots_processed == second.total_slots_processed
        assert [s.amp.mean_job_time for s in first.samples] == [
            s.amp.mean_job_time for s in second.samples
        ]
