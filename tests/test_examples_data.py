"""Direct tests of the Section 4 example environment construction."""

from __future__ import annotations

import pytest

from repro.examples_data import (
    HORIZON,
    LOCAL_TASKS,
    NODE_PRICES,
    build_example,
    _vacant_spans,
)


class TestVacantSpans:
    def test_empty_busy_list_is_whole_horizon(self):
        assert _vacant_spans([]) == [HORIZON]

    def test_busy_prefix(self):
        assert _vacant_spans([(0.0, 150.0)]) == [(150.0, HORIZON[1])]

    def test_busy_suffix(self):
        assert _vacant_spans([(450.0, 600.0)]) == [(0.0, 450.0)]

    def test_interior_busy_splits(self):
        assert _vacant_spans([(250.0, 300.0)]) == [(0.0, 250.0), (300.0, 600.0)]

    def test_multiple_busy_intervals(self):
        spans = _vacant_spans([(0.0, 180.0), (400.0, 420.0)])
        assert spans == [(180.0, 400.0), (420.0, 600.0)]

    def test_unsorted_input_handled(self):
        spans = _vacant_spans([(400.0, 420.0), (0.0, 180.0)])
        assert spans == [(180.0, 400.0), (420.0, 600.0)]

    def test_full_horizon_busy(self):
        assert _vacant_spans([(0.0, 600.0)]) == []


class TestBuildExample:
    def test_deterministic(self):
        one, two = build_example(), build_example()
        assert [(s.start, s.end, s.resource.name) for s in one.slots] == [
            (s.start, s.end, s.resource.name) for s in two.slots
        ]

    def test_prices_match_constants(self):
        example = build_example()
        for name, price in NODE_PRICES.items():
            assert example.nodes[name].price == price

    def test_slots_complement_local_tasks(self):
        example = build_example()
        for name, node in example.nodes.items():
            busy = sum(
                task.end - task.start for task in LOCAL_TASKS if task.node == name
            )
            vacant = sum(
                slot.length for slot in example.slots if slot.resource == node
            )
            assert busy + vacant == pytest.approx(HORIZON[1] - HORIZON[0])

    def test_job_budgets_match_paper_limits(self):
        # S = C·t·N: 5*80*2=800, 10*30*3=900, 3*50*2=300.
        example = build_example()
        job1, job2, job3 = example.jobs
        assert job1.request.budget == pytest.approx(800.0)
        assert job2.request.budget == pytest.approx(900.0)
        assert job3.request.budget == pytest.approx(300.0)

    def test_priority_ordering(self):
        example = build_example()
        assert [job.name for job in example.batch] == ["job1", "job2", "job3"]

    def test_local_tasks_do_not_overlap_per_node(self):
        by_node: dict[str, list[tuple[float, float]]] = {}
        for task in LOCAL_TASKS:
            by_node.setdefault(task.node, []).append((task.start, task.end))
        for spans in by_node.values():
            spans.sort()
            for (a_start, a_end), (b_start, _) in zip(spans, spans[1:]):
                assert a_end <= b_start
