"""Unit tests for the partition-parallel executor (repro.core.shard_search).

The byte-identity of full searches is proven by the sharded-oracle suite
in ``tests/test_reference_oracles.py``; this module covers the executor
machinery itself — partitioner edge cases, worker life cycle in both
in-process and process modes, cross-pipe error propagation, routing of
re-inserted slots, and the auto process-mode threshold.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    InvalidRequestError,
    InvariantViolationError,
    Resource,
    ResourceRequest,
    ShardedSearchExecutor,
    Slot,
    SlotIndex,
    SlotList,
    SlotListError,
    partition_uids,
    shard_owners,
)
from tests.conftest import make_random_request, make_random_slot_list, make_uniform_slots


class TestPartitionerEdges:
    def test_empty_uid_set(self):
        assert partition_uids([], 3) == [(), (), ()]
        assert shard_owners(partition_uids([], 3)) == {}

    def test_more_shards_than_uids_leaves_trailing_empty_blocks(self):
        blocks = partition_uids([5, 2, 9], 7)
        assert blocks == [(2,), (5,), (9,), (), (), (), ()]

    def test_duplicates_collapse(self):
        assert partition_uids([4, 4, 1, 1, 1], 2) == [(1,), (4,)]

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(InvalidRequestError, match="shards"):
            partition_uids([1, 2], 0)

    def test_owner_map_rejects_overlapping_blocks(self):
        with pytest.raises(InvariantViolationError, match="owned by shards"):
            shard_owners([(1, 2), (2, 3)])


def _fingerprint(window):
    return (
        window.start,
        tuple(
            (a.resource.uid, a.start, a.end, a.source.price)
            for a in window.allocations
        ),
    )


def _slot_rows(slots):
    return sorted((s.resource.uid, s.start, s.end, s.price) for s in slots)


class TestExecutorInProcess:
    @pytest.mark.parametrize("shards", [2, 5, 9])
    def test_find_commit_lifecycle_matches_index(self, shards):
        slots = make_random_slot_list(3, count=30)
        request = make_random_request(random.Random(11))
        index = SlotIndex(slots)
        with ShardedSearchExecutor(slots, shards) as executor:
            assert not executor.uses_processes
            for _ in range(3):
                reference = index.find_alp_window(request)
                found = executor.find_alp_window(request)
                assert (found is None) == (reference is None)
                if reference is None:
                    break
                assert _fingerprint(found) == _fingerprint(reference)
                index.commit(reference)
                executor.commit(found)
            assert _slot_rows(executor.slot_list()) == _slot_rows(index.slot_list())

    def test_shards_exceeding_node_count(self):
        # 3 nodes across 9 shards: six workers own nothing and must be
        # harmless no-ops in every scan and merge.
        slots = make_uniform_slots(3, length=100.0)
        request = make_random_request(random.Random(5))
        with ShardedSearchExecutor(slots, 9) as executor:
            reference = SlotIndex(slots).find_alp_window(request)
            found = executor.find_alp_window(request)
            assert (found is None) == (reference is None)
            if reference is not None:
                assert _fingerprint(found) == _fingerprint(reference)

    def test_empty_slot_list(self):
        executor = ShardedSearchExecutor(SlotList(), 4)
        request = make_random_request(random.Random(1))
        assert executor.find_alp_window(request) is None
        assert executor.find_amp_window_at(request) is None
        assert len(executor.slot_list()) == 0
        executor.close()

    def test_commit_of_foreign_window_raises(self):
        slots = make_uniform_slots(2, length=100.0)
        request = ResourceRequest(2, 30.0)
        with ShardedSearchExecutor(slots, 2) as executor:
            window = executor.find_alp_window(request)
            assert window is not None
            executor.commit(window)
            with pytest.raises(SlotListError, match="no vacant slot"):
                executor.commit(window)

    def test_inserted_slot_on_new_resource_is_routed_and_found(self):
        # A node the partition has never seen: routing falls back to
        # uid % shards and the slot must join that shard's scan order.
        slots = make_uniform_slots(2, length=50.0)
        with ShardedSearchExecutor(slots, 2) as executor:
            newcomer = Slot(Resource("late", performance=1.0, price=1.0), 0.0, 50.0)
            executor.insert(newcomer)
            rows = _slot_rows(executor.slot_list())
            assert (newcomer.resource.uid, 0.0, 50.0, 1.0) in rows

    def test_hint_skippable_matches_index(self):
        slots = make_random_slot_list(8, count=25)
        index = SlotIndex(slots)
        with ShardedSearchExecutor(slots, 3) as executor:
            for hint in (float("-inf"), 0.0, 40.0, 1e9):
                assert executor.hint_skippable(hint) == index.hint_skippable(hint)

    def test_close_is_idempotent(self):
        executor = ShardedSearchExecutor(make_uniform_slots(2), 2)
        executor.close()
        executor.close()


class TestExecutorProcesses:
    def test_process_mode_lifecycle_matches_index(self):
        slots = make_random_slot_list(4, count=30)
        request = make_random_request(random.Random(7))
        index = SlotIndex(slots)
        with ShardedSearchExecutor(slots, 3, processes=True) as executor:
            assert executor.uses_processes
            for _ in range(2):
                reference = index.find_amp_window_at(request)
                found = executor.find_amp_window_at(request)
                assert (found is None) == (reference is None)
                if reference is None:
                    break
                assert _fingerprint(found[0]) == _fingerprint(reference[0])
                assert found[1] == reference[1]
                index.commit(reference[0])
                executor.commit(found[0])
            assert _slot_rows(executor.slot_list()) == _slot_rows(index.slot_list())

    def test_worker_errors_propagate_across_the_pipe(self):
        # A SlotListError raised inside a worker process must surface in
        # the master as the same exception type, not as a dead pipe.
        slots = make_uniform_slots(4, length=100.0)
        request = ResourceRequest(3, 40.0)
        with ShardedSearchExecutor(slots, 2, processes=True) as executor:
            window = executor.find_alp_window(request)
            assert window is not None
            executor.commit(window)
            with pytest.raises(SlotListError, match="no vacant slot"):
                executor.commit(window)
            # The executor stays usable after a rejected commit.
            assert executor.hint_skippable(0.0) >= 0

    def test_default_mode_is_in_process(self):
        # Worker processes are an explicit opt-in: pipe round-trips cost
        # more than a post-memo shard scan at any slot-list size.
        slots = make_uniform_slots(8)
        with ShardedSearchExecutor(slots, 2) as executor:
            assert not executor.uses_processes

    def test_processes_can_be_forced_off(self):
        slots = make_uniform_slots(8)
        with ShardedSearchExecutor(slots, 2, processes=False) as executor:
            assert not executor.uses_processes
