"""Tests for the checksummed write-ahead journal (repro.core.journal)."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import JournalCorruptError, PersistenceError
from repro.core.journal import (
    JOURNAL_FORMAT,
    JournalWriter,
    journal_header,
    read_journal,
)


def _write(path, events):
    with JournalWriter(path, fsync=False) as journal:
        for kind, data in events:
            journal.append(kind, data)


class TestRoundTrip:
    def test_empty_path_reads_as_empty(self, tmp_path):
        assert read_journal(tmp_path / "missing.jsonl") == []

    def test_header_written_once(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [("submit", {"job": 1})])
        records = read_journal(path)
        assert records[0].kind == "journal"
        assert records[0].data["format"] == JOURNAL_FORMAT
        assert journal_header(records) == {"format": JOURNAL_FORMAT}

    def test_records_round_trip_in_order(self, tmp_path):
        path = tmp_path / "j.jsonl"
        events = [("submit", {"job": i, "t": i * 0.5}) for i in range(5)]
        _write(path, events)
        records = read_journal(path)
        assert [r.seq for r in records] == list(range(6))
        assert [(r.kind, r.data) for r in records[1:]] == events

    def test_reopen_resumes_sequence(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [("a", {"x": 1})])
        with JournalWriter(path, fsync=False) as journal:
            assert journal.next_seq == 2
            journal.append("b", {"x": 2})
        records = read_journal(path)
        assert [r.kind for r in records] == ["journal", "a", "b"]
        assert [r.seq for r in records] == [0, 1, 2]

    def test_custom_header_fields(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalWriter(path, fsync=False, header={"fingerprint": "abc"}):
            pass
        assert read_journal(path)[0].data["fingerprint"] == "abc"

    def test_append_after_close_raises(self, tmp_path):
        journal = JournalWriter(tmp_path / "j.jsonl", fsync=False)
        journal.close()
        with pytest.raises(PersistenceError):
            journal.append("late", {})


class TestTornTail:
    def test_half_written_last_line_is_skipped_with_warning(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [("a", {"x": 1}), ("b", {"x": 2})])
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        # Simulate a crash mid-append: cut the final record in half.
        torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        path.write_text(torn, encoding="utf-8")
        with pytest.warns(UserWarning, match="torn trailing journal record"):
            records = read_journal(path)
        assert [r.kind for r in records] == ["journal", "a"]

    def test_corrupt_checksum_on_tail_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [("a", {"x": 1}), ("b", {"x": 2})])
        lines = path.read_text(encoding="utf-8").splitlines()
        last = json.loads(lines[-1])
        last["data"]["x"] = 99  # payload no longer matches the CRC
        lines[-1] = json.dumps(last, separators=(",", ":"), sort_keys=True)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.warns(UserWarning, match="checksum mismatch"):
            records = read_journal(path)
        assert [r.kind for r in records] == ["journal", "a"]

    def test_writer_reopen_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [("a", {"x": 1})])
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"seq": 2, "crc":')  # torn append
        with pytest.warns(UserWarning):
            journal = JournalWriter(path, fsync=False)
        # Reopening truncated the fragment, so the next append lands on
        # its own line and the journal reads back clean.
        journal.append("b", {"x": 2})
        journal.close()
        records = read_journal(path)
        assert [r.kind for r in records] == ["journal", "a", "b"]
        assert [r.seq for r in records] == [0, 1, 2]


class TestCorruption:
    def test_mid_file_bad_json_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [("a", {"x": 1}), ("b", {"x": 2})])
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalCorruptError, match="not valid JSON"):
            read_journal(path)

    def test_mid_file_checksum_mismatch_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [("a", {"x": 1}), ("b", {"x": 2})])
        lines = path.read_text(encoding="utf-8").splitlines()
        middle = json.loads(lines[1])
        middle["data"] = {"tampered": True}
        lines[1] = json.dumps(middle, separators=(",", ":"), sort_keys=True)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalCorruptError, match="checksum mismatch"):
            read_journal(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [("a", {"x": 1}), ("b", {"x": 2}), ("c", {"x": 3})])
        lines = path.read_text(encoding="utf-8").splitlines()
        del lines[2]  # drop a middle record entirely
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalCorruptError, match="sequence gap"):
            read_journal(path)

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [("a", {"x": 1}), ("b", {"x": 2})])
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[1] = "42"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalCorruptError, match="JSON object"):
            read_journal(path)

    def test_unknown_format_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [("a", {"x": 1})])
        lines = path.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        header["data"]["format"] = "repro-journal/99"
        import zlib

        header["crc"] = zlib.crc32(
            json.dumps(header["data"], separators=(",", ":"), sort_keys=True).encode()
        )
        lines[0] = json.dumps(header, separators=(",", ":"), sort_keys=True)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalCorruptError, match="unsupported journal format"):
            read_journal(path)
