"""Tests for the Section 7 dynamics: arrivals and node failures."""

from __future__ import annotations

import pytest

from repro.core import (
    BatchScheduler,
    InfeasiblePolicy,
    InvalidRequestError,
    Job,
    ResourceRequest,
    SchedulerConfig,
    SlotListError,
)
from repro.grid import (
    BurstyArrivals,
    Cluster,
    ComputeNode,
    JobState,
    Metascheduler,
    PoissonArrivals,
    VOEnvironment,
)
from repro.sim import JobGenerator


def _environment(node_count: int = 3) -> VOEnvironment:
    nodes = [ComputeNode(f"n{i}", performance=1.0, price=2.0) for i in range(node_count)]
    return VOEnvironment([Cluster("c", nodes)])


class TestClearSpan:
    def test_evicts_overlapping_only(self):
        node = ComputeNode("n")
        node.run_local_job(0.0, 10.0, "a")
        node.run_local_job(20.0, 30.0, "b")
        node.run_local_job(40.0, 50.0, "c")
        evicted = node.schedule.clear_span(25.0, 45.0)
        assert sorted(iv.start for iv in evicted) == [20.0, 40.0]
        assert [iv.start for iv in node.schedule] == [0.0]

    def test_empty_span_is_noop(self):
        node = ComputeNode("n")
        node.run_local_job(0.0, 10.0)
        assert node.schedule.clear_span(5.0, 5.0) == []
        assert len(node.schedule) == 1


class TestInjectOutage:
    def test_kills_overlapping_reservation_everywhere(self):
        environment = _environment()
        nodes = list(environment.nodes())
        nodes[0].reserve_for("jobA", 0.0, 50.0)
        nodes[1].reserve_for("jobA", 0.0, 50.0)
        nodes[2].reserve_for("jobB", 0.0, 50.0)
        killed = environment.inject_outage(nodes[0], 25.0, 75.0)
        assert killed == ["jobA"]
        # jobA lost BOTH reservations; jobB untouched.
        assert nodes[1].schedule.busy_time(0.0, 100.0) == 0.0
        assert nodes[2].schedule.busy_time(0.0, 100.0) == pytest.approx(50.0)

    def test_outage_blocks_future_slots(self):
        environment = _environment(node_count=1)
        node = next(environment.nodes())
        environment.inject_outage(node, 10.0, 60.0)
        slots = environment.vacant_slot_list(0.0, 100.0)
        spans = [(slot.start, slot.end) for slot in slots]
        assert spans == [(0.0, 10.0), (60.0, 100.0)]

    def test_local_jobs_die_silently(self):
        environment = _environment(node_count=1)
        node = next(environment.nodes())
        node.run_local_job(0.0, 100.0, "p1")
        killed = environment.inject_outage(node, 40.0, 50.0)
        assert killed == []
        assert node.schedule.busy_time(0.0, 100.0) == pytest.approx(10.0)  # outage only

    def test_live_filter_preserves_completed_reservations(self):
        # Regression: inject_outage used to cancel every evicted job,
        # erasing completed jobs' historical reservations (and their
        # income) across the whole environment.
        environment = _environment(node_count=2)
        nodes = list(environment.nodes())
        nodes[0].reserve_for("done", 0.0, 30.0)
        nodes[1].reserve_for("done", 0.0, 30.0)
        nodes[0].reserve_for("live", 40.0, 80.0)
        killed = environment.inject_outage(nodes[0], 20.0, 60.0, live_jobs=["live"])
        assert killed == ["live"]
        # The completed job keeps its executed span outside the outage
        # on the failed node (income = busy reservation time × price 2.0)
        # and its whole reservation on the untouched node.
        assert nodes[0].income(0.0, 100.0) == pytest.approx(20.0 * 2.0)
        assert nodes[1].income(0.0, 100.0) == pytest.approx(30.0 * 2.0)
        # The live job lost all reservations; only the outage occupies
        # the failed node past 20.0.
        assert nodes[0].schedule.busy_time(60.0, 100.0) == 0.0
        assert nodes[0].schedule.busy_time(20.0, 60.0) == pytest.approx(40.0)

    def test_default_treats_every_job_as_live(self):
        # Without life-cycle knowledge the legacy contract stands: all
        # evicted global jobs are revoked everywhere.
        environment = _environment(node_count=2)
        nodes = list(environment.nodes())
        nodes[0].reserve_for("done", 0.0, 30.0)
        nodes[1].reserve_for("done", 0.0, 30.0)
        killed = environment.inject_outage(nodes[0], 20.0, 60.0)
        assert killed == ["done"]
        assert nodes[0].income(0.0, 100.0) == 0.0
        assert nodes[1].income(0.0, 100.0) == 0.0

    def test_foreign_node_rejected(self):
        environment = _environment()
        stranger = ComputeNode("stranger")
        with pytest.raises(SlotListError):
            environment.inject_outage(stranger, 0.0, 10.0)

    def test_empty_span_rejected(self):
        environment = _environment()
        node = next(environment.nodes())
        with pytest.raises(SlotListError):
            environment.inject_outage(node, 10.0, 10.0)


class TestMetaschedulerOutage:
    def _meta(self) -> Metascheduler:
        scheduler = BatchScheduler(
            SchedulerConfig(infeasible_policy=InfeasiblePolicy.EARLIEST)
        )
        return Metascheduler(_environment(), scheduler, period=50.0, horizon=400.0)

    def test_outage_resubmits_job_and_it_reschedules(self):
        meta = self._meta()
        job = Job(ResourceRequest(2, 60.0, max_price=3.0), name="g1")
        meta.submit(job)
        meta.run_iteration(0.0)
        record = meta.trace.record_for(job)
        assert record.state is JobState.SCHEDULED
        victim_node = meta.environment.node_for(
            record.window.allocations[0].resource.uid
        )
        resubmitted = meta.inject_outage(
            victim_node, record.window.start, record.window.end
        )
        assert [j.name for j in resubmitted] == ["g1"]
        assert record.state is JobState.PENDING
        assert record.resubmissions == 1
        # The next iteration finds it a new window avoiding the outage.
        meta.run_iteration(50.0)
        assert record.state is JobState.SCHEDULED
        assert record.window is not None
        outage_span = (record.window.start, record.window.end)
        assert meta.environment.cancel_job("g1") == 2  # sanity: it was committed
        assert outage_span is not None

    def test_outage_spares_completed_jobs(self):
        # Regression: an outage overlapping a COMPLETED job's historical
        # reservation used to cancel it retroactively, zeroing the
        # owner's income for work that already ran.
        meta = self._meta()
        job = Job(ResourceRequest(1, 50.0, max_price=3.0), name="done")
        meta.submit(job)
        meta.run_iteration(0.0)
        record = meta.trace.record_for(job)
        window = record.window
        meta.trace.mark_completions(window.end)
        assert record.state is JobState.COMPLETED
        victim = meta.environment.node_for(window.allocations[0].resource.uid)
        mid = (window.start + window.end) / 2.0
        assert meta.inject_outage(victim, mid, window.end + 100.0) == []
        assert record.state is JobState.COMPLETED
        assert record.window is window
        # The executed portion before the outage still earns income.
        assert victim.income(window.start, mid) == pytest.approx(
            (mid - window.start) * window.allocations[0].unit_price
        )

    def test_outage_missing_everything_resubmits_nothing(self):
        meta = self._meta()
        job = Job(ResourceRequest(1, 50.0, max_price=3.0), name="g1")
        meta.submit(job)
        meta.run_iteration(0.0)
        record = meta.trace.record_for(job)
        other_nodes = [
            node
            for node in meta.environment.nodes()
            if node.resource.uid != record.window.allocations[0].resource.uid
        ]
        assert meta.inject_outage(other_nodes[0], 0.0, 500.0) == []
        assert record.state is JobState.SCHEDULED


class TestPoissonArrivals:
    def test_arrivals_sorted_and_bounded(self):
        process = PoissonArrivals(rate=0.05, seed=3)
        stream = list(process.stream(0.0, 1000.0))
        times = [time for time, _ in stream]
        assert times == sorted(times)
        assert all(0.0 <= time < 1000.0 for time in times)

    def test_rate_controls_volume(self):
        slow = len(list(PoissonArrivals(rate=0.01, seed=1).stream(0.0, 5000.0)))
        fast = len(list(PoissonArrivals(rate=0.05, seed=1).stream(0.0, 5000.0)))
        assert fast > slow

    def test_unique_job_names(self):
        stream = list(PoissonArrivals(rate=0.05, seed=2).stream(0.0, 2000.0))
        names = [job.name for _, job in stream]
        assert len(set(names)) == len(names)

    def test_validation(self):
        with pytest.raises(InvalidRequestError):
            PoissonArrivals(rate=0.0)
        process = PoissonArrivals(rate=1.0, seed=1)
        with pytest.raises(InvalidRequestError):
            list(process.stream(10.0, 0.0))

    def test_custom_generator_used(self):
        generator = JobGenerator(seed=9)
        process = PoissonArrivals(rate=0.05, generator=generator, seed=9)
        _, job = next(iter(process.stream(0.0, 10_000.0)))
        assert 50.0 <= job.request.volume <= 150.0


class TestBurstyArrivals:
    def test_bursts_raise_density(self):
        process = BurstyArrivals(
            base_rate=0.01,
            burst_factor=10.0,
            burst_period=500.0,
            burst_length=100.0,
            seed=4,
        )
        stream = list(process.stream(0.0, 20_000.0))
        in_burst = sum(1 for time, _ in stream if time % 500.0 < 100.0)
        out_burst = len(stream) - in_burst
        # Burst windows are 1/5 of the time but (at 10x rate) should carry
        # well over half the arrivals.
        assert in_burst > out_burst

    def test_validation(self):
        with pytest.raises(InvalidRequestError):
            BurstyArrivals(base_rate=0.0)
        with pytest.raises(InvalidRequestError):
            BurstyArrivals(base_rate=1.0, burst_factor=0.5)
        with pytest.raises(InvalidRequestError):
            BurstyArrivals(base_rate=1.0, burst_length=600.0, burst_period=500.0)

    def test_feeds_metascheduler(self):
        environment = _environment()
        scheduler = BatchScheduler(
            SchedulerConfig(infeasible_policy=InfeasiblePolicy.EARLIEST)
        )
        meta = Metascheduler(environment, scheduler, period=100.0, horizon=600.0)
        for time, job in PoissonArrivals(rate=0.005, seed=6).stream(0.0, 1000.0):
            meta.submit(job, at_time=time)
        meta.run(until=1500.0)
        summary = meta.trace.summary()
        assert summary.submitted == len(meta.trace)
