"""Tests for the parameter-sensitivity harness (repro.sim.sensitivity)."""

from __future__ import annotations

import pytest

from repro.core import Criterion, InvalidRequestError
from repro.sim import SWEEPABLE_PARAMETERS, render_sweep, sweep


class TestSweepValidation:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(InvalidRequestError):
            sweep("unknown_knob", [1.0], iterations=1)

    def test_builders_validate_values(self):
        with pytest.raises(InvalidRequestError):
            SWEEPABLE_PARAMETERS["performance_ceiling"](0.5)
        with pytest.raises(InvalidRequestError):
            SWEEPABLE_PARAMETERS["slot_count"](0)
        with pytest.raises(InvalidRequestError):
            SWEEPABLE_PARAMETERS["price_cap_ceiling"](0.0)

    def test_all_advertised_parameters_build(self):
        values = {
            "performance_ceiling": 2.0,
            "same_start_probability": 0.5,
            "slot_count": 130,
            "price_cap_ceiling": 1.5,
        }
        for name, builder in SWEEPABLE_PARAMETERS.items():
            config = builder(values[name])
            assert config.slot_config is not None
            assert config.job_config is not None


class TestSweepExecution:
    def test_points_carry_parameter_and_value(self):
        points = sweep("slot_count", [125, 145], iterations=6, seed=3)
        assert [point.value for point in points] == [125, 145]
        assert all(point.parameter == "slot_count" for point in points)
        for point in points:
            assert point.summary.attempted == 6

    def test_slot_count_reflected_in_summary(self):
        points = sweep("slot_count", [125], iterations=4, seed=3)
        assert points[0].summary.mean_slots_per_experiment == pytest.approx(125.0)

    def test_objective_forwarded(self):
        (point,) = sweep(
            "same_start_probability", [0.4], objective=Criterion.COST, iterations=4
        )
        assert point.summary.objective is Criterion.COST


class TestRenderSweep:
    def test_renders_table(self):
        points = sweep("slot_count", [125], iterations=4, seed=3)
        text = render_sweep(points)
        assert "slot_count" in text
        assert "time gain" in text

    def test_empty(self):
        assert render_sweep([]) == "(empty sweep)"
