"""Unit tests for repro.core.window (TaskAllocation, Window)."""

from __future__ import annotations

import pytest

from repro.core import InvalidRequestError, ResourceRequest, Slot, TaskAllocation, Window

from tests.conftest import make_resource


def _window(specs, *, volume=10.0, node_count=None, max_price=None):
    """Build a window from (performance, price, slot_start, slot_end, win_start) specs."""
    allocations = []
    request_kwargs = {}
    for performance, price, slot_start, slot_end, win_start in specs:
        node = make_resource(performance=performance, price=price)
        slot = Slot(node, slot_start, slot_end)
        runtime = volume / performance
        allocations.append(TaskAllocation(slot, win_start, win_start + runtime))
    if max_price is not None:
        request_kwargs["max_price"] = max_price
    request = ResourceRequest(
        node_count=node_count or len(specs), volume=volume, **request_kwargs
    )
    return Window(request, allocations)


class TestTaskAllocation:
    def test_basic_accessors(self):
        node = make_resource(performance=2.0, price=3.0)
        slot = Slot(node, 0.0, 100.0)
        allocation = TaskAllocation(slot, 10.0, 60.0)
        assert allocation.resource == node
        assert allocation.runtime == pytest.approx(50.0)
        assert allocation.cost == pytest.approx(150.0)
        assert allocation.unit_price == 3.0

    def test_rejects_escape_from_source_slot(self):
        slot = Slot(make_resource(), 0.0, 100.0)
        with pytest.raises(InvalidRequestError):
            TaskAllocation(slot, 80.0, 120.0)


class TestWindowConstruction:
    def test_rejects_wrong_allocation_count(self):
        node = make_resource()
        slot = Slot(node, 0.0, 100.0)
        request = ResourceRequest(node_count=2, volume=10.0)
        with pytest.raises(InvalidRequestError):
            Window(request, [TaskAllocation(slot, 0.0, 10.0)])

    def test_rejects_asynchronous_starts(self):
        a, b = make_resource("a"), make_resource("b")
        request = ResourceRequest(node_count=2, volume=10.0)
        allocations = [
            TaskAllocation(Slot(a, 0.0, 100.0), 0.0, 10.0),
            TaskAllocation(Slot(b, 0.0, 100.0), 5.0, 15.0),
        ]
        with pytest.raises(InvalidRequestError):
            Window(request, allocations)

    def test_rejects_duplicate_resources(self):
        node = make_resource()
        slot = Slot(node, 0.0, 100.0)
        request = ResourceRequest(node_count=2, volume=10.0)
        allocations = [
            TaskAllocation(slot, 0.0, 10.0),
            TaskAllocation(slot, 0.0, 10.0),
        ]
        with pytest.raises(InvalidRequestError):
            Window(request, allocations)


class TestWindowGeometry:
    def test_rectangular_window(self):
        window = _window(
            [(1.0, 2.0, 0.0, 100.0, 20.0), (1.0, 3.0, 0.0, 100.0, 20.0)], volume=50.0
        )
        assert window.start == 20.0
        assert window.end == 70.0
        assert window.length == pytest.approx(50.0)
        assert window.slots_number == 2

    def test_rough_right_edge(self):
        # Heterogeneous nodes: the window length is set by the slowest.
        window = _window(
            [(1.0, 2.0, 0.0, 200.0, 0.0), (2.0, 3.0, 0.0, 200.0, 0.0)], volume=100.0
        )
        assert window.length == pytest.approx(100.0)  # slow node
        ends = sorted(allocation.end for allocation in window.allocations)
        assert ends == [pytest.approx(50.0), pytest.approx(100.0)]

    def test_cost_and_unit_cost(self):
        window = _window(
            [(1.0, 5.0, 0.0, 100.0, 0.0), (1.0, 5.0, 0.0, 100.0, 0.0)], volume=80.0
        )
        assert window.unit_cost == pytest.approx(10.0)
        assert window.cost == pytest.approx(800.0)

    def test_heterogeneous_cost(self):
        # Fast node: runtime 50, price 4 -> 200; slow: runtime 100, price 1 -> 100.
        window = _window(
            [(2.0, 4.0, 0.0, 200.0, 0.0), (1.0, 1.0, 0.0, 200.0, 0.0)], volume=100.0
        )
        assert window.cost == pytest.approx(300.0)

    def test_resources_ordered_by_uid(self):
        window = _window(
            [(1.0, 1.0, 0.0, 100.0, 0.0), (1.0, 1.0, 0.0, 100.0, 0.0)], volume=10.0
        )
        uids = [resource.uid for resource in window.resources()]
        assert uids == sorted(uids)

    def test_occupied_spans_match_allocations(self):
        window = _window(
            [(1.0, 1.0, 0.0, 100.0, 10.0), (2.0, 1.0, 0.0, 100.0, 10.0)], volume=40.0
        )
        spans = list(window.occupied_spans())
        assert len(spans) == 2
        for (resource, start, end), allocation in zip(spans, window.allocations):
            assert resource == allocation.resource
            assert (start, end) == (allocation.start, allocation.end)


class TestWindowIntersection:
    def test_disjoint_windows_on_same_resource(self):
        node = make_resource()
        request = ResourceRequest(node_count=1, volume=10.0)
        early = Window(request, [TaskAllocation(Slot(node, 0.0, 100.0), 0.0, 10.0)])
        late = Window(request, [TaskAllocation(Slot(node, 0.0, 100.0), 10.0, 20.0)])
        assert not early.intersects(late)

    def test_overlapping_windows_detected(self):
        node = make_resource()
        request = ResourceRequest(node_count=1, volume=10.0)
        first = Window(request, [TaskAllocation(Slot(node, 0.0, 100.0), 0.0, 10.0)])
        second = Window(request, [TaskAllocation(Slot(node, 0.0, 100.0), 5.0, 15.0)])
        assert first.intersects(second)
        assert second.intersects(first)

    def test_different_resources_never_intersect(self):
        request = ResourceRequest(node_count=1, volume=10.0)
        first = Window(
            request, [TaskAllocation(Slot(make_resource("a"), 0.0, 100.0), 0.0, 10.0)]
        )
        second = Window(
            request, [TaskAllocation(Slot(make_resource("b"), 0.0, 100.0), 0.0, 10.0)]
        )
        assert not first.intersects(second)


class TestWindowContract:
    def test_satisfies_happy_path(self):
        window = _window(
            [(1.0, 2.0, 0.0, 100.0, 0.0), (1.0, 3.0, 0.0, 100.0, 0.0)],
            volume=50.0,
            max_price=3.0,
        )
        assert window.satisfies()

    def test_satisfies_rejects_price_violation_without_budget(self):
        window = _window(
            [(1.0, 2.0, 0.0, 100.0, 0.0), (1.0, 9.0, 0.0, 100.0, 0.0)],
            volume=50.0,
            max_price=3.0,
        )
        assert not window.satisfies()

    def test_satisfies_budget_mode_ignores_per_slot_price(self):
        window = _window(
            [(1.0, 2.0, 0.0, 100.0, 0.0), (1.0, 9.0, 0.0, 100.0, 0.0)],
            volume=50.0,
            max_price=6.0,
        )
        # Total cost (2+9)*50 = 550 <= budget 600 although 9 > 6.
        assert window.satisfies(budget=600.0)
        assert not window.satisfies(budget=500.0)

    def test_satisfies_rejects_slow_node(self):
        node = make_resource(performance=1.0)
        slot = Slot(node, 0.0, 100.0)
        request = ResourceRequest(node_count=1, volume=10.0, min_performance=2.0)
        window = Window(request, [TaskAllocation(slot, 0.0, 10.0)])
        assert not window.satisfies()

    def test_equality_and_hash(self):
        node = make_resource()
        slot = Slot(node, 0.0, 100.0)
        request = ResourceRequest(node_count=1, volume=10.0)
        first = Window(request, [TaskAllocation(slot, 0.0, 10.0)])
        second = Window(request, [TaskAllocation(slot, 0.0, 10.0)])
        assert first == second
        assert hash(first) == hash(second)
