"""Tests for decision records, trace contexts, shard merging, and profiling.

The observability tentpole rests on four properties pinned here:

* decision records are deterministic — no wall-clock fields, sequence
  numbers reset per iteration scope — so the decision stream of one
  iteration is identical no matter which worker produced it;
* trace ids derive from the experiment seed (never ambient entropy),
  so every shard of one run shares a trace id and reruns line up;
* merged multi-worker traces are canonically byte-identical to the
  serial trace of the same run (the cross-worker invariance contract);
* the phase profiler and ``explain`` renderer reproduce cost shares
  and decision paths from a recorded trace alone.
"""

from __future__ import annotations

import json

import pytest

from repro.core.errors import TelemetryError
from repro.obs import (
    NOOP_DECISIONS,
    DecisionLog,
    TraceContext,
    canonical_trace,
    decision_sort_key,
    decisions_for_job,
    merge_trace_files,
    merge_traces,
    phase_costs,
    read_trace,
    render_explain,
    render_profile,
    write_trace,
)
from repro.obs.telemetry import Telemetry, configure, disable, get_telemetry, install


@pytest.fixture(autouse=True)
def _restore_telemetry():
    previous = get_telemetry()
    yield
    install(previous)


class TestDecisionLog:
    def test_emit_stamps_scope_and_sequence(self):
        log = DecisionLog()
        with log.scope(iteration=3, job="j1"):
            log.emit("alp.window", start=10.0)
            log.emit("search.alternative_accepted", alternative=1)
        assert log.records == [
            {
                "kind": "decision",
                "op": "alp.window",
                "seq": 0,
                "iteration": 3,
                "job": "j1",
                "start": 10.0,
            },
            {
                "kind": "decision",
                "op": "search.alternative_accepted",
                "seq": 1,
                "iteration": 3,
                "job": "j1",
                "alternative": 1,
            },
        ]

    def test_iteration_scope_resets_sequence(self):
        log = DecisionLog()
        with log.scope(iteration=0):
            log.emit("a")
            log.emit("b")
        with log.scope(iteration=1):
            log.emit("c")
        assert [r["seq"] for r in log.records] == [0, 1, 0]

    def test_scope_exit_restores_sequence(self):
        # Leaving any scope rewinds the counter to its entry value, so a
        # job's numbering depends only on its own emit order — not on how
        # many records *other* scopes emitted before it was re-entered.
        log = DecisionLog()
        with log.scope(tick=7):
            log.emit("a")
            with log.scope(job="x"):
                log.emit("b")
            log.emit("c")
        assert [r["seq"] for r in log.records] == [0, 1, 1]

    def test_cap_drops_and_counts(self):
        log = DecisionLog(max_records=2)
        for _ in range(5):
            log.emit("x")
        assert len(log) == 2
        assert log.dropped == 3

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            DecisionLog(max_records=0)

    def test_records_carry_no_wall_clock(self):
        log = DecisionLog()
        with log.scope(iteration=0):
            log.emit("alp.window", start=1.0, cost=2.0)
        assert "ts" not in log.records[0]

    def test_noop_instance_is_disabled(self):
        assert NOOP_DECISIONS.enabled is False

    def test_sort_key_orders_iteration_then_seq(self):
        records = [
            {"iteration": 1, "seq": 0},
            {"seq": 5},
            {"iteration": 0, "seq": 2},
            {"iteration": 0, "seq": 1},
        ]
        ordered = sorted(records, key=decision_sort_key)
        assert ordered == [
            {"seq": 5},
            {"iteration": 0, "seq": 1},
            {"iteration": 0, "seq": 2},
            {"iteration": 1, "seq": 0},
        ]


class TestTraceContext:
    def test_derivation_is_deterministic(self):
        assert TraceContext.derive(42) == TraceContext.derive(42)
        assert TraceContext.derive(42).trace_id != TraceContext.derive(43).trace_id

    def test_workers_share_trace_id_with_distinct_span_ids(self):
        base = TraceContext.derive(42)
        workers = [TraceContext.derive(42, worker=w) for w in range(4)]
        assert {w.trace_id for w in workers} == {base.trace_id}
        assert len({w.span_id for w in workers}) == 4

    def test_for_worker_matches_direct_derivation(self):
        assert TraceContext.derive(42).for_worker(3) == TraceContext.derive(
            42, worker=3
        )

    def test_child_keeps_trace_id(self):
        parent = TraceContext.derive(7)
        child = parent.child("restore")
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id
        assert parent.child("restore") == child

    def test_dict_round_trip(self):
        context = TraceContext.derive(9, worker=2)
        assert TraceContext.from_dict(context.to_dict()) == context


def record_shard(seed: int, worker: int, iterations: list[int]) -> Telemetry:
    """A small hand-built telemetry shard with decisions and metrics."""
    telemetry = configure(context=TraceContext.derive(seed, worker=worker))
    for index in iterations:
        with telemetry.decisions.scope(iteration=index):
            with telemetry.span("experiment.iteration", index=index):
                telemetry.decisions.emit("alp.window", job=f"j{index}", start=1.0)
                telemetry.count("search.batches", 1, algo="alp")
                telemetry.observe("phase.seconds", 0.01 * (worker + 1), phase="phase1.scan")
    return telemetry


class TestMergeTraces:
    def test_merge_refuses_mixed_trace_ids(self, tmp_path):
        paths = []
        for seed, name in ((1, "a.jsonl"), (2, "b.jsonl")):
            telemetry = record_shard(seed, 0, [0])
            path = tmp_path / name
            write_trace(str(path), telemetry)
            paths.append(str(path))
        disable()
        with pytest.raises(TelemetryError, match="different runs"):
            merge_trace_files(paths)

    def test_merge_refuses_empty_list(self):
        with pytest.raises(TelemetryError, match="empty"):
            merge_traces([])

    def test_merged_decisions_sorted_by_iteration(self, tmp_path):
        paths = []
        for worker, iterations in ((0, [0, 2]), (1, [1, 3])):
            telemetry = record_shard(5, worker, iterations)
            path = tmp_path / f"t.w{worker}.jsonl"
            write_trace(str(path), telemetry)
            paths.append(str(path))
        disable()
        merged = merge_trace_files(paths)
        assert [r["iteration"] for r in merged.decisions] == [0, 1, 2, 3]
        assert merged.meta.get("workers") == [0, 1]
        assert merged.meta.get("merged_from") == 2

    def test_canonical_trace_equal_across_worker_splits(self, tmp_path):
        one = record_shard(5, 0, [0, 1, 2, 3])
        path_one = tmp_path / "serial.jsonl"
        write_trace(str(path_one), one)
        paths = []
        for worker, iterations in ((0, [0, 1]), (1, [2, 3])):
            telemetry = record_shard(5, worker, iterations)
            path = tmp_path / f"t.w{worker}.jsonl"
            write_trace(str(path), telemetry)
            paths.append(str(path))
        disable()
        serial = canonical_trace(read_trace(str(path_one)))
        merged = canonical_trace(merge_trace_files(paths))
        assert serial == merged


class TestProfile:
    def test_phase_costs_shares_sum_to_one(self, tmp_path):
        telemetry = configure()
        telemetry.observe("phase.seconds", 0.3, phase="phase1.scan")
        telemetry.observe("phase.seconds", 0.1, phase="phase2.dp")
        path = tmp_path / "t.jsonl"
        write_trace(str(path), telemetry)
        disable()
        costs = phase_costs(read_trace(str(path)))
        assert [c.phase for c in costs] == ["phase1.scan", "phase2.dp"]
        assert sum(c.share for c in costs) == pytest.approx(1.0)
        assert costs[0].share == pytest.approx(0.75)

    def test_render_profile_lists_phases_and_counters(self, tmp_path):
        telemetry = configure()
        telemetry.observe("phase.seconds", 0.2, phase="journal.fsync")
        telemetry.count("journal.appends", 3, kind="iteration")
        path = tmp_path / "t.jsonl"
        write_trace(str(path), telemetry)
        disable()
        report = render_profile(read_trace(str(path)))
        assert "journal.fsync" in report
        assert "journal.appends" in report

    def test_empty_trace_profiles_to_note(self, tmp_path):
        telemetry = configure()
        path = tmp_path / "t.jsonl"
        write_trace(str(path), telemetry)
        disable()
        assert "no timing data" in render_profile(read_trace(str(path)))


class TestRenderExplain:
    def test_orders_and_describes_the_path(self):
        records = [
            {"kind": "decision", "op": "dp.selected", "seq": 9, "iteration": 1,
             "job": "j1", "alternative": 2, "cost": 10.5},
            {"kind": "decision", "op": "alp.window", "seq": 0, "iteration": 0,
             "job": "j1", "start": 5.0},
            {"kind": "decision", "op": "alp.window", "seq": 0, "iteration": 0,
             "job": "j2", "start": 6.0},
        ]
        text = render_explain(records, "j1")
        assert "2 records" in text
        assert text.index("alp.window") < text.index("dp.selected")
        assert "alternative=2" in text
        assert "j2" not in text

    def test_unknown_job_yields_note(self):
        assert "no decisions" in render_explain([], "ghost")

    def test_decisions_for_job_filters(self):
        records = [{"job": "a", "seq": 0}, {"job": "b", "seq": 1}]
        assert decisions_for_job(records, "b") == [{"job": "b", "seq": 1}]
