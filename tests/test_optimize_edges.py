"""Edge-case tests for the DP optimizer beyond the main suite."""

from __future__ import annotations


import pytest

from repro.core import (
    Criterion,
    InfeasibleConstraintError,
    Job,
    OptimizationError,
    ResourceRequest,
    Slot,
    TaskAllocation,
    Window,
)
from repro.core.optimize import (
    brute_force,
    minimize_cost,
    minimize_time,
    optimize,
    time_quota,
    vo_budget,
)

from tests.conftest import make_resource


def _window(price: float, volume: float, start: float = 0.0) -> Window:
    node = make_resource(price=price)
    slot = Slot(node, start, start + volume)
    request = ResourceRequest(node_count=1, volume=volume)
    return Window(request, [TaskAllocation(slot, start, start + volume)])


def _job(name: str) -> Job:
    return Job(ResourceRequest(1, 10.0), name=name)


class TestDegenerateLimits:
    def test_zero_budget_with_free_window(self):
        # A zero-cost window under a zero budget is feasible.
        alts = {_job("free"): [_window(0.0, 10.0)]}
        combo = minimize_time(alts, budget_limit=0.0, resolution=10)
        assert combo.total_cost == 0.0
        assert combo.total_time == pytest.approx(10.0)

    def test_zero_budget_with_paid_window_infeasible(self):
        alts = {_job("paid"): [_window(2.0, 10.0)]}
        with pytest.raises(InfeasibleConstraintError):
            minimize_time(alts, budget_limit=0.0, resolution=10)

    def test_negative_limit_rejected(self):
        alts = {_job("a"): [_window(1.0, 10.0)]}
        with pytest.raises(InfeasibleConstraintError):
            minimize_time(alts, budget_limit=-5.0)

    def test_resolution_one_still_sound(self):
        # Coarsest possible grid: feasibility must still be conservative
        # in the documented direction (floor weights never reject a
        # feasible combination).
        alts = {_job("a"): [_window(1.0, 10.0)]}  # cost 10 == limit
        combo = minimize_time(alts, budget_limit=10.0, resolution=1)
        assert combo.total_time == pytest.approx(10.0)

    def test_invalid_resolution_rejected(self):
        alts = {_job("a"): [_window(1.0, 10.0)]}
        with pytest.raises(OptimizationError):
            minimize_time(alts, budget_limit=10.0, resolution=0)


class TestSingleAlternative:
    def test_forced_choice(self):
        alts = {_job("only"): [_window(2.0, 30.0)]}
        combo = minimize_cost(alts, quota=30.0, resolution=30)
        assert combo.total_cost == pytest.approx(60.0)
        (window,) = combo.selection.values()
        assert window.length == pytest.approx(30.0)

    def test_quota_from_single_alternative_is_exact(self):
        alts = {_job("only"): [_window(2.0, 30.0)]}
        assert time_quota(alts) == pytest.approx(30.0)  # floor(30/1)

    def test_budget_from_single_alternative(self):
        alts = {_job("only"): [_window(2.0, 30.0)]}
        assert vo_budget(alts) == pytest.approx(60.0)


class TestManyIdenticalAlternatives:
    def test_identical_alternatives_quota_is_exact(self):
        # Three identical 10-unit alternatives: the mean is exactly 10,
        # so quota = floor(30/3) = 10 and selection is feasible.  (The
        # old per-window floor gave 3*floor(10/3) = 9 < 10, spuriously
        # rejecting every such iteration.)
        alts = {_job("a"): [_window(1.0, 10.0) for _ in range(3)]}
        assert time_quota(alts) == pytest.approx(10.0)
        combo = minimize_cost(alts, quota=time_quota(alts), resolution=10)
        assert combo.total_time == pytest.approx(10.0)

    def test_quota_below_every_alternative_is_infeasible(self):
        # A genuinely unmeetable quota still raises: every alternative
        # takes 10 units, a quota of 9 admits none of them.
        alts = {_job("a"): [_window(1.0, 10.0) for _ in range(3)]}
        with pytest.raises(InfeasibleConstraintError):
            minimize_cost(alts, quota=9.0, resolution=9)

    def test_divisible_duration_feasible(self):
        # Two 10-unit alternatives: quota = 2*floor(10/2) = 10 = duration.
        alts = {_job("a"): [_window(1.0, 10.0) for _ in range(2)]}
        combo = minimize_cost(alts, quota=time_quota(alts), resolution=10)
        assert combo.total_time == pytest.approx(10.0)


class TestObjectiveTies:
    def test_equal_times_pick_some_valid_window(self):
        windows = [_window(5.0, 20.0), _window(1.0, 20.0)]
        alts = {_job("a"): windows}
        combo = minimize_time(alts, budget_limit=200.0, resolution=200)
        assert combo.total_time == pytest.approx(20.0)
        assert combo.selection[next(iter(alts))] in windows

    def test_cost_tie_broken_consistently(self):
        windows = [_window(2.0, 10.0), _window(1.0, 20.0)]  # both cost 20
        alts = {_job("a"): windows}
        combo = minimize_cost(alts, quota=20.0, resolution=20)
        assert combo.total_cost == pytest.approx(20.0)


class TestCombinationViews:
    def test_means_empty_combination(self):
        combo = optimize({}, Criterion.TIME, 10.0)
        assert combo.mean_job_time == 0.0
        assert combo.mean_job_cost == 0.0

    def test_limit_recorded(self):
        alts = {_job("a"): [_window(1.0, 10.0)]}
        combo = minimize_time(alts, budget_limit=42.0, resolution=42)
        assert combo.limit == 42.0
        assert combo.objective is Criterion.TIME


class TestBruteForceEdges:
    def test_empty_mapping(self):
        combo = brute_force({}, Criterion.COST, 10.0)
        assert combo is not None
        assert combo.selection == {}

    def test_exact_boundary_feasible(self):
        alts = {_job("a"): [_window(1.0, 10.0)]}  # time exactly 10
        combo = brute_force(alts, Criterion.COST, 10.0)
        assert combo is not None

    def test_agrees_with_dp_on_boundary(self):
        alts = {
            _job("a"): [_window(1.0, 10.0), _window(3.0, 4.0)],
            _job("b"): [_window(2.0, 6.0)],
        }
        limit = 16.0  # exactly time(10) + time(6)
        reference = brute_force(alts, Criterion.COST, limit)
        combo = minimize_cost(alts, quota=limit, resolution=16)
        assert reference is not None
        assert combo.total_cost == pytest.approx(reference.total_cost)
