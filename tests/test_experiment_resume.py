"""Resumable experiment series: checkpoint, kill, resume, byte-identical."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.errors import CheckpointMismatchError
from repro.sim import (
    ExperimentCheckpoint,
    ExperimentConfig,
    ExperimentRunner,
    ParallelRunner,
    config_fingerprint,
    decode_outcome,
    encode_outcome,
    generate_iteration,
    run_iteration,
)

CONFIG = ExperimentConfig(iterations=18, seed=41)


def compute_outcome(config: ExperimentConfig, index: int):
    slots, batch = generate_iteration(config, index)
    return run_iteration(config, index, slots, batch)


class TestOutcomeCodec:
    def test_counted_outcome_round_trips(self):
        for index in range(6):
            outcome = compute_outcome(CONFIG, index)
            assert decode_outcome(encode_outcome(outcome)) == outcome

    def test_fingerprint_distinguishes_configs(self):
        assert config_fingerprint(CONFIG) == config_fingerprint(
            ExperimentConfig(iterations=18, seed=41)
        )
        assert config_fingerprint(CONFIG) != config_fingerprint(
            ExperimentConfig(iterations=18, seed=42)
        )
        assert config_fingerprint(CONFIG) != config_fingerprint(
            ExperimentConfig(iterations=19, seed=41)
        )


class TestSerialResume:
    def test_resume_equals_uninterrupted(self, tmp_path):
        reference = ExperimentRunner(CONFIG).run()
        # Simulate a crash: checkpoint only the first 10 iterations.
        partial = tmp_path / "partial.jsonl"
        interrupted = 0

        def killer(attempted, counted):
            nonlocal interrupted
            interrupted = attempted
            if attempted >= 10:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            ExperimentRunner(CONFIG).run(checkpoint=partial, progress=killer)
        assert interrupted == 10
        resumed = ExperimentRunner(CONFIG).run(checkpoint=partial, resume=True)
        assert resumed == reference

    def test_resume_skips_finished_work(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ExperimentRunner(CONFIG).run(checkpoint=path)
        store = ExperimentCheckpoint(path, CONFIG, resume=True)
        assert store.completed == CONFIG.iterations
        store.close()
        # A fully-checkpointed resume recomputes nothing: the journal is
        # not appended to, and the result still matches a plain run.
        before = path.read_bytes()
        result = ExperimentRunner(CONFIG).run(checkpoint=path, resume=True)
        assert result == ExperimentRunner(CONFIG).run()
        assert path.read_bytes() == before

    def test_fresh_run_replaces_existing_checkpoint(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        other = ExperimentConfig(iterations=4, seed=999)
        ExperimentRunner(other).run(checkpoint=path)
        # Same path, different config, no --resume: starts over cleanly.
        result = ExperimentRunner(CONFIG).run(checkpoint=path)
        assert result == ExperimentRunner(CONFIG).run()

    def test_resume_with_wrong_config_is_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ExperimentRunner(CONFIG).run(checkpoint=path)
        other = ExperimentConfig(iterations=18, seed=999)
        with pytest.raises(CheckpointMismatchError, match="different experiment"):
            ExperimentRunner(other).run(checkpoint=path, resume=True)

    def test_resume_tolerates_torn_checkpoint_tail(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ExperimentRunner(CONFIG).run(checkpoint=path)
        # Tear the last record in half, as a SIGKILL mid-append would.
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        path.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2],
            encoding="utf-8",
        )
        with pytest.warns(UserWarning, match="torn trailing journal record"):
            result = ExperimentRunner(CONFIG).run(checkpoint=path, resume=True)
        # The torn iteration was simply recomputed.
        assert result == ExperimentRunner(CONFIG).run()


class TestParallelResume:
    def test_resume_with_holes_matches_uninterrupted(self, tmp_path):
        reference = ParallelRunner(CONFIG, workers=1).run()
        path = tmp_path / "ck.jsonl"
        store = ExperimentCheckpoint(path, CONFIG)
        # Non-contiguous completion pattern, as an aborted sharded run leaves.
        for index in [0, 1, 2, 3, 7, 11, 12]:
            store.record(index, compute_outcome(CONFIG, index))
        store.close()
        for workers in (1, 3):
            resumed = ParallelRunner(CONFIG, workers=workers).run(
                checkpoint=path, resume=True
            )
            assert resumed == reference, f"workers={workers} diverged"

    def test_checkpointed_fresh_run_matches_plain_run(self, tmp_path):
        reference = ParallelRunner(CONFIG, workers=2).run()
        checkpointed = ParallelRunner(CONFIG, workers=2).run(
            checkpoint=tmp_path / "ck.jsonl"
        )
        assert checkpointed == reference

    def test_progress_reports_cached_iterations(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = ExperimentCheckpoint(path, CONFIG)
        for index in range(12):
            store.record(index, compute_outcome(CONFIG, index))
        store.close()
        calls = []
        ParallelRunner(CONFIG, workers=1).run(
            checkpoint=path,
            resume=True,
            progress=lambda attempted, counted: calls.append(attempted),
        )
        # One call per freshly-computed iteration, counting from the
        # resumed baseline.
        assert calls == list(range(13, CONFIG.iterations + 1))


@pytest.mark.slow
class TestKillResumeSmoke:
    """SIGKILL a checkpointed CLI run mid-flight, resume, diff stdout."""

    ARGS = [
        "experiment",
        "--iterations",
        "300",
        "--seed",
        "11",
    ]

    def cli(self, *extra, cwd):
        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src")
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *self.ARGS, *extra],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            cwd=cwd,
        )

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        reference = self.cli(cwd=tmp_path)
        ref_out, ref_err = reference.communicate(timeout=300)
        assert reference.returncode == 0, ref_err.decode()

        checkpoint = tmp_path / "ck.jsonl"
        victim = self.cli("--checkpoint", str(checkpoint), cwd=tmp_path)
        deadline = time.monotonic() + 240
        # Kill once a prefix of iterations is durably on disk.
        while time.monotonic() < deadline:
            if checkpoint.exists() and checkpoint.stat().st_size > 4000:
                break
            if victim.poll() is not None:
                break
            time.sleep(0.02)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.communicate(timeout=60)

        resumed = self.cli(
            "--checkpoint", str(checkpoint), "--resume", cwd=tmp_path
        )
        res_out, res_err = resumed.communicate(timeout=300)
        assert resumed.returncode == 0, res_err.decode()
        assert res_out == ref_out
        assert b"resuming from checkpoint" in res_err
