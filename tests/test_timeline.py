"""Tests for timeline diagnostics (repro.core.timeline)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ResourceRequest, Slot, SlotList, SlotListError
from repro.core.timeline import (
    StepFunction,
    alive_profile,
    concurrency_profile,
    supply_summary,
)
from repro.sim import SlotGenerator

from tests.conftest import make_resource


class TestStepFunction:
    def test_at_before_first_breakpoint(self):
        f = StepFunction(((10.0, 3.0),))
        assert f.at(5.0) == 0.0
        assert f.at(10.0) == 3.0
        assert f.at(99.0) == 3.0

    def test_minimum_on_interval(self):
        f = StepFunction(((0.0, 3.0), (10.0, 1.0), (20.0, 5.0)))
        assert f.minimum_on(0.0, 30.0) == 1.0
        assert f.minimum_on(0.0, 10.0) == 3.0
        assert f.minimum_on(25.0, 30.0) == 5.0

    def test_minimum_rejects_empty_interval(self):
        with pytest.raises(SlotListError):
            StepFunction(()).minimum_on(5.0, 5.0)

    def test_maximum(self):
        assert StepFunction(()).maximum() == 0.0
        assert StepFunction(((0.0, 2.0), (5.0, 7.0))).maximum() == 7.0


class TestConcurrencyProfile:
    def test_single_slot(self):
        slots = SlotList([Slot(make_resource(), 10.0, 30.0)])
        profile = concurrency_profile(slots)
        assert profile.at(5.0) == 0
        assert profile.at(10.0) == 1
        assert profile.at(29.9) == 1
        assert profile.at(30.0) == 0

    def test_overlapping_slots_stack(self):
        slots = SlotList(
            [
                Slot(make_resource("a"), 0.0, 100.0),
                Slot(make_resource("b"), 50.0, 150.0),
                Slot(make_resource("c"), 60.0, 80.0),
            ]
        )
        profile = concurrency_profile(slots)
        assert profile.at(55.0) == 2
        assert profile.at(70.0) == 3
        assert profile.at(120.0) == 1

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_integral_equals_total_vacant_time(self, seed):
        slots = SlotGenerator(seed=seed).generate()
        profile = concurrency_profile(slots)
        integral = 0.0
        points = profile.breakpoints
        for (t0, v0), (t1, _) in zip(points, points[1:]):
            integral += v0 * (t1 - t0)
        assert integral == pytest.approx(slots.total_vacant_time(), rel=1e-9)


class TestAliveProfile:
    def test_alive_window_shrinks_by_runtime(self):
        slots = SlotList([Slot(make_resource(performance=2.0), 0.0, 100.0)])
        request = ResourceRequest(1, 100.0)  # runtime 50 on the fast node
        profile = alive_profile(slots, request)
        assert profile.at(0.0) == 1
        assert profile.at(49.9) == 1
        assert profile.at(50.0) == 0  # too late to finish inside the slot

    def test_performance_filter(self):
        slots = SlotList(
            [
                Slot(make_resource("slow", performance=1.0), 0.0, 100.0),
                Slot(make_resource("fast", performance=2.0), 0.0, 100.0),
            ]
        )
        request = ResourceRequest(1, 10.0, min_performance=1.5)
        profile = alive_profile(slots, request)
        assert profile.maximum() == 1  # only the fast node counts

    def test_coallocation_feasibility_threshold(self):
        slots = SlotList(
            [
                Slot(make_resource("a"), 0.0, 100.0),
                Slot(make_resource("b"), 20.0, 100.0),
            ]
        )
        request = ResourceRequest(2, 50.0)
        profile = alive_profile(slots, request)
        # Both alive only on [20, 50): that's where N=2 is feasible.
        assert profile.at(10.0) == 1
        assert profile.at(20.0) == 2
        assert profile.at(50.0) == 0


class TestSupplySummary:
    def test_empty_rejected(self):
        with pytest.raises(SlotListError):
            supply_summary(SlotList())

    def test_simple_numbers(self):
        slots = SlotList(
            [
                Slot(make_resource(performance=1.0), 0.0, 100.0),
                Slot(make_resource(performance=3.0), 0.0, 100.0),
            ]
        )
        summary = supply_summary(slots)
        assert summary.peak_concurrency == 2
        assert summary.total_vacant_time == pytest.approx(200.0)
        assert summary.mean_performance == pytest.approx(2.0)

    def test_warmup_validation(self):
        slots = SlotList([Slot(make_resource(), 0.0, 10.0)])
        with pytest.raises(SlotListError):
            supply_summary(slots, warmup_starts=1)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_paper_claim_at_least_five_slots_ready(self, seed):
        """Section 5: with gaps in [0, 10] and lengths in [50, 300], "at
        each moment of time we have at least five different slots ready
        for utilization" — true in steady state (the list necessarily
        ramps up from one slot, so a small warmup is excluded)."""
        slots = SlotGenerator(seed=seed).generate()
        summary = supply_summary(slots, warmup_starts=10)
        assert summary.min_concurrency >= 5
        assert 1.0 <= summary.mean_performance <= 3.0
