"""Tests for the Section 5 slot/job generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InvalidRequestError
from repro.sim import (
    JobGenerator,
    JobGeneratorConfig,
    SlotGenerator,
    SlotGeneratorConfig,
)


class TestSlotGeneratorConfigValidation:
    def test_defaults_are_paper_values(self):
        config = SlotGeneratorConfig()
        assert config.slot_count_range == (120, 150)
        assert config.slot_length_range == (50.0, 300.0)
        assert config.performance_range == (1.0, 3.0)
        assert config.same_start_probability == 0.4
        assert config.start_gap_range == (0.0, 10.0)

    def test_rejects_bad_ranges(self):
        with pytest.raises(InvalidRequestError):
            SlotGeneratorConfig(slot_count_range=(10, 5))
        with pytest.raises(InvalidRequestError):
            SlotGeneratorConfig(slot_count_range=(0, 5))
        with pytest.raises(InvalidRequestError):
            SlotGeneratorConfig(performance_range=(0.0, 3.0))
        with pytest.raises(InvalidRequestError):
            SlotGeneratorConfig(same_start_probability=1.5)
        with pytest.raises(InvalidRequestError):
            SlotGeneratorConfig(start_gap_range=(-1.0, 10.0))


class TestSlotGenerator:
    def test_output_within_published_ranges(self):
        generator = SlotGenerator(seed=1)
        slots = generator.generate()
        assert 120 <= len(slots) <= 150
        for slot in slots:
            assert 50.0 <= slot.length <= 300.0
            assert 1.0 <= slot.performance <= 3.0
            low, high = generator.config.pricing.bounds(slot.performance)
            assert low <= slot.price <= high

    def test_sorted_by_start(self):
        slots = SlotGenerator(seed=2).generate()
        assert slots.is_sorted()

    def test_synchronized_starts_present(self):
        # With p=0.4 over >=119 transitions, repeated starts are certain
        # for any reasonable seed.
        slots = SlotGenerator(seed=3).generate()
        starts = [slot.start for slot in slots]
        assert len(set(starts)) < len(starts)

    def test_gap_bound_between_distinct_starts(self):
        slots = SlotGenerator(seed=4).generate()
        distinct = sorted(set(slot.start for slot in slots))
        for earlier, later in zip(distinct, distinct[1:]):
            assert later - earlier <= 10.0 + 1e-9

    def test_deterministic_under_seed(self):
        one = SlotGenerator(seed=5).generate()
        two = SlotGenerator(seed=5).generate()
        assert [(s.start, s.end, s.price) for s in one] == [
            (s.start, s.end, s.price) for s in two
        ]

    def test_fresh_resources_every_slot(self):
        slots = SlotGenerator(seed=6).generate()
        uids = [slot.resource.uid for slot in slots]
        assert len(set(uids)) == len(uids)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_zero_same_start_probability_strictly_interleaves(self, seed):
        config = SlotGeneratorConfig(
            same_start_probability=0.0, start_gap_range=(1.0, 10.0)
        )
        slots = SlotGenerator(config, seed=seed).generate()
        starts = [slot.start for slot in slots]
        assert all(later > earlier for earlier, later in zip(starts, starts[1:]))


class TestJobGeneratorConfigValidation:
    def test_defaults_are_paper_values(self):
        config = JobGeneratorConfig()
        assert config.job_count_range == (3, 7)
        assert config.node_count_range == (1, 6)
        assert config.volume_range == (50.0, 150.0)
        assert config.min_performance_range == (1.0, 2.0)

    def test_rejects_bad_ranges(self):
        with pytest.raises(InvalidRequestError):
            JobGeneratorConfig(job_count_range=(0, 3))
        with pytest.raises(InvalidRequestError):
            JobGeneratorConfig(volume_range=(0.0, 10.0))
        with pytest.raises(InvalidRequestError):
            JobGeneratorConfig(min_performance_range=(0.0, 2.0))
        with pytest.raises(InvalidRequestError):
            JobGeneratorConfig(price_cap_factor_range=(0.0, 1.0))
        with pytest.raises(InvalidRequestError):
            JobGeneratorConfig(price_base=0.0)


class TestJobGenerator:
    def test_batch_within_published_ranges(self):
        generator = JobGenerator(seed=1)
        batch = generator.generate()
        assert 3 <= len(batch) <= 7
        for job in batch:
            request = job.request
            assert 1 <= request.node_count <= 6
            assert 50.0 <= request.volume <= 150.0
            assert 1.0 <= request.min_performance <= 2.0

    def test_price_cap_derivation(self):
        config = JobGeneratorConfig(price_cap_factor_range=(1.0, 1.0))
        generator = JobGenerator(config, seed=2)
        request = generator.generate_request()
        assert request.max_price == pytest.approx(1.7**request.min_performance)

    def test_priorities_follow_generation_order(self):
        batch = JobGenerator(seed=3).generate()
        assert [job.priority for job in batch] == list(range(len(batch)))

    def test_deterministic_under_seed(self):
        def spec(b):
            return [
                (j.request.node_count, j.request.volume, j.request.max_price) for j in b
            ]

        assert spec(JobGenerator(seed=4).generate()) == spec(
            JobGenerator(seed=4).generate()
        )

    def test_seed_and_rng_mutually_exclusive(self):
        import random

        with pytest.raises(InvalidRequestError):
            JobGenerator(seed=1, rng=random.Random(1))

    def test_shared_rng_with_slot_generator(self):
        slot_generator = SlotGenerator(seed=9)
        job_generator = JobGenerator(rng=slot_generator.rng)
        slots = slot_generator.generate()
        batch = job_generator.generate()
        # Re-running with the same master seed replays both draws.
        slot_generator2 = SlotGenerator(seed=9)
        job_generator2 = JobGenerator(rng=slot_generator2.rng)
        slots2 = slot_generator2.generate()
        batch2 = job_generator2.generate()
        assert [(s.start, s.price) for s in slots] == [(s.start, s.price) for s in slots2]
        assert [j.request.volume for j in batch] == [j.request.volume for j in batch2]
