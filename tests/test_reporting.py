"""Tests for the EXPERIMENTS.md report generator (repro.sim.reporting)."""

from __future__ import annotations

import pytest

from repro.sim.reporting import complexity_sweep, experiments_report


class TestComplexitySweep:
    def test_points_cover_grid(self):
        points = complexity_sweep(sizes=(100, 200), repeats=1)
        combos = {(point.algorithm, point.slots) for point in points}
        assert combos == {
            (name, size)
            for name in ("ALP", "AMP", "backfill")
            for size in (100, 200)
        }
        assert all(point.seconds > 0 for point in points)


class TestExperimentsReport:
    @pytest.fixture(scope="class")
    def report(self) -> str:
        # Tiny run: checks structure, not statistics.
        return experiments_report(iterations=25, seed=77)

    def test_has_every_experiment_section(self, report):
        for section in (
            "EXP-T1 / Fig. 4",
            "EXP-T1 / Fig. 5",
            "EXP-T2 / Fig. 6",
            "EXP-ALT",
            "EXP-EX / Figs. 2-3",
            "EXP-CPLX",
            "EXP-RHO",
            "EXP-GRID",
        ):
            assert section in report, f"missing section {section!r}"

    def test_quotes_paper_reference_values(self, report):
        for value in ("59.85", "39.01", "313.09", "343.30", "34.28", "135.11"):
            assert value in report

    def test_worked_example_facts_present(self, report):
        assert "unit cost 10" in report
        assert "[150, 230]" in report
        assert "ALP: 0" in report  # cpu6 untouchable by ALP

    def test_is_markdown(self, report):
        assert report.startswith("# EXPERIMENTS")
        assert "| panel | metric |" in report
