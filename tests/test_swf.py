"""Tests for SWF workload import/export (repro.grid.swf)."""

from __future__ import annotations

import pytest

from repro.core import (
    BatchScheduler,
    InfeasiblePolicy,
    InvalidRequestError,
    SchedulerConfig,
)
from repro.grid import Cluster, ComputeNode, Metascheduler, VOEnvironment
from repro.grid.swf import (
    SwfImportPolicy,
    parse_swf,
    read_swf,
    write_swf,
)


def _line(number: int, submit: float, procs: int, req_time: float) -> str:
    fields = [str(number), f"{submit:g}", "-1", "-1", "-1", "-1", "-1",
              str(procs), f"{req_time:g}", "-1", "1", "-1", "-1", "-1",
              "-1", "-1", "-1", "-1"]
    return " ".join(fields)


SAMPLE = "\n".join(
    [
        "; Version: 2.2",
        "; Computer: synthetic",
        _line(1, 0.0, 2, 120.0),
        _line(2, 50.0, 4, 60.0),
        _line(3, 100.0, -1, 60.0),   # missing processors -> skipped
        _line(4, 150.0, 1, -1.0),    # missing runtime -> skipped
    ]
)


class TestParse:
    def test_parses_valid_jobs(self):
        result = parse_swf(SAMPLE)
        assert len(result.submissions) == 2
        assert result.skipped == 2
        assert result.comments == ["; Version: 2.2", "; Computer: synthetic"]
        (t1, job1), (t2, job2) = result.submissions
        assert (t1, job1.name) == (0.0, "swf1")
        assert job1.request.node_count == 2
        assert job1.request.volume == 120.0
        assert (t2, job2.request.node_count) == (50.0, 4)

    def test_price_cap_attached_per_policy(self):
        policy = SwfImportPolicy(price_cap_factor_range=(1.0, 1.0), min_performance=2.0)
        result = parse_swf(_line(1, 0.0, 2, 100.0), policy)
        (_, job) = result.submissions[0]
        assert job.request.max_price == pytest.approx(1.7**2)
        assert job.request.min_performance == 2.0

    def test_node_count_clamped(self):
        policy = SwfImportPolicy(max_node_count=8)
        result = parse_swf(_line(1, 0.0, 512, 100.0), policy)
        assert result.submissions[0][1].request.node_count == 8

    def test_wrong_field_count_rejected(self):
        with pytest.raises(InvalidRequestError):
            parse_swf("1 2 3")

    def test_non_numeric_rejected(self):
        bad = _line(1, 0.0, 2, 100.0).replace("120", "oops", 1)
        bad_line = " ".join(["x"] + _line(1, 0.0, 2, 100.0).split()[1:])
        with pytest.raises(InvalidRequestError):
            parse_swf(bad_line)

    def test_policy_validation(self):
        with pytest.raises(InvalidRequestError):
            SwfImportPolicy(min_performance=0.0)
        with pytest.raises(InvalidRequestError):
            SwfImportPolicy(price_cap_factor_range=(2.0, 1.0))
        with pytest.raises(InvalidRequestError):
            SwfImportPolicy(max_node_count=0)

    def test_read_from_file(self, tmp_path):
        path = tmp_path / "workload.swf"
        path.write_text(SAMPLE)
        result = read_swf(path)
        assert len(result.submissions) == 2


class TestRoundTripThroughScheduler:
    def test_import_schedule_export(self, tmp_path):
        nodes = [ComputeNode(f"n{i}", performance=1.0, price=2.0) for i in range(4)]
        environment = VOEnvironment([Cluster("c", nodes)])
        scheduler = BatchScheduler(
            SchedulerConfig(infeasible_policy=InfeasiblePolicy.EARLIEST)
        )
        meta = Metascheduler(environment, scheduler, period=100.0, horizon=800.0)
        for submit_time, job in parse_swf(SAMPLE).submissions:
            meta.submit(job, at_time=submit_time)
        meta.run(until=1000.0)

        path = write_swf(meta.trace, tmp_path / "out.swf", header="repro export")
        text = path.read_text()
        lines = [line for line in text.splitlines() if not line.startswith(";")]
        assert len(lines) == 2
        assert text.startswith("; repro export")
        # Re-importing our own export yields the same job shapes.
        reimported = parse_swf(text)
        assert [job.request.node_count for _, job in reimported.submissions] == [2, 4]

    def test_unplaced_jobs_marked_with_minus_one(self, tmp_path):
        from repro.grid.trace import WorkloadTrace
        from repro.core import Job, ResourceRequest

        trace = WorkloadTrace()
        trace.add(Job(ResourceRequest(2, 50.0), name="pending"), submit_time=5.0)
        path = write_swf(trace, tmp_path / "pending.swf")
        fields = path.read_text().split()
        assert fields[2] == "-1"  # wait time
        assert fields[3] == "-1"  # run time
