"""Tests for the pricing mechanisms (repro.core.pricing)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BudgetPolicy,
    DemandAdjustedPricing,
    ExponentialPricing,
    InvalidRequestError,
    Resource,
    ResourceRequest,
)


class TestExponentialPricing:
    def test_nominal_follows_paper_law(self):
        pricing = ExponentialPricing()
        assert pricing.nominal(1.0) == pytest.approx(1.7)
        assert pricing.nominal(3.0) == pytest.approx(1.7**3)

    def test_mean_is_midpoint(self):
        pricing = ExponentialPricing()
        assert pricing.mean(2.0) == pytest.approx(1.7**2)  # (0.75+1.25)/2 = 1

    def test_sample_within_bounds(self, rng):
        pricing = ExponentialPricing()
        for _ in range(200):
            performance = rng.uniform(1.0, 3.0)
            low, high = pricing.bounds(performance)
            assert low <= pricing.sample(performance, rng) <= high

    def test_validation(self):
        with pytest.raises(InvalidRequestError):
            ExponentialPricing(base=0.0)
        with pytest.raises(InvalidRequestError):
            ExponentialPricing(low_factor=1.5, high_factor=1.0)
        with pytest.raises(InvalidRequestError):
            ExponentialPricing().nominal(-1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.5, max_value=4.0))
    def test_price_grows_with_performance(self, performance):
        pricing = ExponentialPricing()
        assert pricing.nominal(performance + 0.1) > pricing.nominal(performance)


class TestBudgetPolicy:
    def test_default_is_plain_amp(self):
        request = ResourceRequest(2, 80.0, max_price=5.0)
        assert BudgetPolicy().budget_for(request) == pytest.approx(request.budget)

    def test_shrinks_budget(self):
        request = ResourceRequest(2, 80.0, max_price=5.0)
        assert BudgetPolicy(rho=0.8).budget_for(request) == pytest.approx(640.0)

    @pytest.mark.parametrize("rho", [0.0, 1.0001, -1.0])
    def test_rejects_bad_rho(self, rho):
        with pytest.raises(InvalidRequestError):
            BudgetPolicy(rho=rho)


class TestDemandAdjustedPricing:
    def test_multiplier_bounds(self):
        pricing = DemandAdjustedPricing(sensitivity=0.5)
        assert pricing.multiplier(0.0) == pytest.approx(1.0)
        assert pricing.multiplier(1.0) == pytest.approx(1.5)

    def test_multiplier_rejects_bad_utilization(self):
        pricing = DemandAdjustedPricing()
        with pytest.raises(InvalidRequestError):
            pricing.multiplier(1.5)
        with pytest.raises(InvalidRequestError):
            pricing.multiplier(-0.1)

    def test_rejects_negative_sensitivity(self):
        with pytest.raises(InvalidRequestError):
            DemandAdjustedPricing(sensitivity=-1.0)

    def test_sample_scales_with_demand(self, rng):
        pricing = DemandAdjustedPricing(
            base=ExponentialPricing(low_factor=1.0, high_factor=1.0), sensitivity=1.0
        )
        idle = pricing.sample(2.0, 0.0, rng)
        busy = pricing.sample(2.0, 1.0, rng)
        assert busy == pytest.approx(2 * idle)

    def test_price_resource_keeps_identity_fields(self, rng):
        pricing = DemandAdjustedPricing()
        node = Resource("cpu1", performance=2.0, price=1.0)
        repriced = pricing.price_resource(node, 0.5, rng)
        assert repriced.name == node.name
        assert repriced.performance == node.performance
        assert repriced.price > 0
        assert repriced.uid != node.uid  # a new resource identity
