"""Unit and property tests for the ALP slot-search algorithm."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Resource,
    ResourceRequest,
    Slot,
    SlotList,
    WindowNotFoundError,
)
from repro.core.alp import ForwardScan, find_window, require_window, slot_is_suited

from tests.conftest import make_resource, make_uniform_slots


class TestSlotIsSuited:
    def test_performance_condition(self):
        request = ResourceRequest(node_count=1, volume=10.0, min_performance=2.0)
        slow = Slot(make_resource(performance=1.5), 0.0, 100.0)
        fast = Slot(make_resource(performance=2.0), 0.0, 100.0)
        assert not slot_is_suited(slow, request, check_price=True)
        assert slot_is_suited(fast, request, check_price=True)

    def test_price_condition_toggles(self):
        request = ResourceRequest(node_count=1, volume=10.0, max_price=3.0)
        pricey = Slot(make_resource(price=5.0), 0.0, 100.0)
        assert not slot_is_suited(pricey, request, check_price=True)
        assert slot_is_suited(pricey, request, check_price=False)

    def test_length_condition_uses_node_runtime(self):
        request = ResourceRequest(node_count=1, volume=100.0)
        short_fast = Slot(make_resource(performance=2.0), 0.0, 50.0)
        short_slow = Slot(make_resource(performance=1.0), 0.0, 50.0)
        assert slot_is_suited(short_fast, request, check_price=True)
        assert not slot_is_suited(short_slow, request, check_price=True)


class TestForwardScan:
    def test_expiry_on_advance(self):
        request = ResourceRequest(node_count=2, volume=50.0)
        scan = ForwardScan(request)
        early = Slot(make_resource("early"), 0.0, 60.0)
        late = Slot(make_resource("late"), 30.0, 100.0)
        assert scan.offer(early)
        # At T_last = 30, 'early' has only 30 < 50 remaining -> expires.
        assert scan.offer(late)
        assert [slot.resource.name for slot in scan.candidates] == ["late"]

    def test_cannot_move_backwards(self):
        scan = ForwardScan(ResourceRequest(node_count=1, volume=10.0))
        scan.advance_to(50.0)
        with pytest.raises(ValueError):
            scan.advance_to(40.0)

    def test_build_window_uses_latest_chosen_start(self):
        request = ResourceRequest(node_count=2, volume=20.0)
        scan = ForwardScan(request)
        scan.offer(Slot(make_resource("a"), 0.0, 100.0))
        scan.offer(Slot(make_resource("b"), 10.0, 100.0))
        window = scan.build_window()
        assert window.start == 10.0


class TestFindWindow:
    def test_simple_concurrent_window(self):
        slots = make_uniform_slots(3, length=100.0)
        request = ResourceRequest(node_count=3, volume=50.0)
        window = find_window(slots, request)
        assert window is not None
        assert window.start == 0.0
        assert window.length == pytest.approx(50.0)
        assert window.slots_number == 3

    def test_none_when_not_enough_slots(self):
        slots = make_uniform_slots(2, length=100.0)
        request = ResourceRequest(node_count=3, volume=50.0)
        assert find_window(slots, request) is None

    def test_price_cap_excludes_expensive_nodes(self):
        cheap = Slot(make_resource("cheap", price=2.0), 0.0, 100.0)
        pricey = Slot(make_resource("pricey", price=9.0), 0.0, 100.0)
        late_cheap = Slot(make_resource("late", price=2.0), 50.0, 200.0)
        slots = SlotList([cheap, pricey, late_cheap])
        request = ResourceRequest(node_count=2, volume=40.0, max_price=3.0)
        window = find_window(slots, request)
        assert window is not None
        assert window.start == 50.0
        assert {r.name for r in window.resources()} == {"cheap", "late"}

    def test_check_price_false_uses_expensive_node(self):
        cheap = Slot(make_resource("cheap", price=2.0), 0.0, 100.0)
        pricey = Slot(make_resource("pricey", price=9.0), 0.0, 100.0)
        slots = SlotList([cheap, pricey])
        request = ResourceRequest(node_count=2, volume=40.0, max_price=3.0)
        window = find_window(slots, request, check_price=False)
        assert window is not None
        assert window.start == 0.0

    def test_earliest_window_wins(self):
        # Two feasible windows; ALP must return the earlier one.
        a = Slot(make_resource("a"), 0.0, 100.0)
        b = Slot(make_resource("b"), 10.0, 100.0)
        c = Slot(make_resource("c"), 200.0, 300.0)
        d = Slot(make_resource("d"), 200.0, 300.0)
        slots = SlotList([a, b, c, d])
        request = ResourceRequest(node_count=2, volume=30.0)
        window = find_window(slots, request)
        assert window is not None
        assert window.start == 10.0

    def test_window_on_heterogeneous_performance(self):
        slow = Slot(make_resource("slow", performance=1.0), 0.0, 100.0)
        fast = Slot(make_resource("fast", performance=2.0), 0.0, 60.0)
        slots = SlotList([slow, fast])
        request = ResourceRequest(node_count=2, volume=100.0)
        window = find_window(slots, request)
        assert window is not None
        # Rough right edge: 100 on the slow node, 50 on the fast one.
        assert window.length == pytest.approx(100.0)

    def test_single_resource_cannot_host_two_tasks(self):
        # Vacant slots on one resource never overlap, so a 2-node job
        # must fail on a single-node environment.
        node = make_resource()
        slots = SlotList([Slot(node, 0.0, 100.0), Slot(node, 150.0, 300.0)])
        request = ResourceRequest(node_count=2, volume=20.0)
        assert find_window(slots, request) is None

    def test_expired_candidate_replaced_later(self):
        # 'a' expires when the scan reaches 'b' (only 30 of it remains);
        # the window forms at 80 from b + c.
        a = Slot(make_resource("a"), 0.0, 60.0)
        b = Slot(make_resource("b"), 30.0, 200.0)
        c = Slot(make_resource("c"), 80.0, 200.0)
        slots = SlotList([a, b, c])
        request = ResourceRequest(node_count=2, volume=50.0)
        window = find_window(slots, request)
        assert window is not None
        assert window.start == 80.0
        assert {r.name for r in window.resources()} == {"b", "c"}

    def test_input_list_not_modified(self):
        slots = make_uniform_slots(3, length=100.0)
        before = list(slots)
        find_window(slots, ResourceRequest(node_count=2, volume=50.0))
        assert list(slots) == before

    def test_empty_list(self):
        assert find_window(SlotList(), ResourceRequest(node_count=1, volume=10.0)) is None


class TestRequireWindow:
    def test_returns_window_on_success(self):
        slots = make_uniform_slots(1, length=100.0)
        request = ResourceRequest(node_count=1, volume=50.0)
        assert require_window(slots, request) is not None

    def test_raises_with_job_name(self):
        request = ResourceRequest(node_count=1, volume=50.0)
        with pytest.raises(WindowNotFoundError) as excinfo:
            require_window(SlotList(), request, job_name="job42")
        assert excinfo.value.job_name == "job42"


# --------------------------------------------------------------------- #
# Property-based invariants                                             #
# --------------------------------------------------------------------- #


def _random_slot_list(seed: int, count: int) -> SlotList:
    rng = random.Random(seed)
    slots = []
    start = 0.0
    for i in range(count):
        if rng.random() > 0.4:
            start += rng.uniform(0.0, 10.0)
        performance = rng.uniform(1.0, 3.0)
        node = Resource(f"n{i}", performance=performance, price=rng.uniform(1.0, 6.0))
        slots.append(Slot(node, start, start + rng.uniform(50.0, 300.0)))
    return SlotList(slots)


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    node_count=st.integers(min_value=1, max_value=5),
    volume=st.floats(min_value=10.0, max_value=200.0),
    min_performance=st.floats(min_value=1.0, max_value=2.0),
    max_price=st.floats(min_value=1.0, max_value=7.0),
)
def test_alp_window_always_satisfies_request(seed, node_count, volume, min_performance, max_price):
    """Whatever ALP returns is a valid window: N distinct nodes, enough
    performance, per-slot price cap, synchronous start inside every
    source slot."""
    slots = _random_slot_list(seed, 40)
    request = ResourceRequest(
        node_count=node_count,
        volume=volume,
        min_performance=min_performance,
        max_price=max_price,
    )
    window = find_window(slots, request)
    if window is None:
        return
    assert window.satisfies(request)
    for allocation in window.allocations:
        assert allocation.source in slots


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_alp_monotone_in_node_count(seed):
    """Needing more concurrent nodes can only delay (or lose) the window."""
    slots = _random_slot_list(seed, 40)
    starts = []
    for node_count in (1, 2, 3):
        request = ResourceRequest(node_count=node_count, volume=60.0)
        window = find_window(slots, request)
        starts.append(None if window is None else window.start)
    seen: list[float] = []
    for start in starts:
        if start is None:
            # Once infeasible, larger requests stay infeasible on the
            # same list.
            continue
        seen.append(start)
    assert seen == sorted(seen)
