"""Property-based invariants of the slot-search model (hypothesis).

Where the oracle tests of ``test_reference_oracles.py`` pin the finders
to brute-force references on specific quantities (the window start), the
properties here assert the *model contracts* of paper Section 3 over
seeded random instances, for both the naive-rescan reference and the
indexed fast path:

* ALP windows respect the per-slot price cap ``c ≤ C`` (cond. 2°c);
* AMP windows respect the job budget ``S = C·t·N``;
* alternatives produced by the multi-pass scheme never overlap the
  slots subtracted for previously found windows, and never escape the
  originally vacant spans;
* every ALP-feasible instance is AMP-feasible (the budget is the sum of
  ``N`` per-slot caps over runtimes no longer than the capped ones when
  all performances are ≥ 1, so ALP's own window fits under it).

Instances come from the shared seeded builders in ``tests/conftest.py``
— the same generator family the differential suite uses.
"""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ResourceRequest, SlotSearchAlgorithm, find_alternatives
from repro.core import alp, amp

from tests.conftest import make_random_batch, make_random_slot_list

#: Budget-sum tolerance: ``Window.cost`` re-adds placement costs in
#: resource-uid order, while the scan's acceptance test sums them in
#: (cost, uid) order — same terms, different float association.
COST_TOLERANCE = 1e-9

_request_strategy = st.builds(
    ResourceRequest,
    node_count=st.integers(min_value=1, max_value=5),
    volume=st.floats(min_value=10.0, max_value=200.0),
    min_performance=st.floats(min_value=1.0, max_value=2.0),
    max_price=st.floats(min_value=1.0, max_value=8.0),
)

_seed_strategy = st.integers(min_value=0, max_value=100_000)

_use_index = st.booleans()


@settings(max_examples=80, deadline=None)
@given(seed=_seed_strategy, request=_request_strategy)
def test_alp_windows_respect_per_slot_cap(seed, request):
    """Every slot of an ALP window costs at most the per-slot cap C."""
    slots = make_random_slot_list(seed)
    window = alp.find_window(slots, request)
    if window is None:
        return
    for allocation in window.allocations:
        assert allocation.unit_price <= request.max_price
        assert allocation.resource.performance >= request.min_performance
    assert window.satisfies(request)


@settings(max_examples=80, deadline=None)
@given(seed=_seed_strategy, request=_request_strategy)
def test_amp_windows_respect_budget(seed, request):
    """An AMP window's total cost never exceeds S = C·t·N."""
    slots = make_random_slot_list(seed)
    window = amp.find_window(slots, request)
    if window is None:
        return
    assert window.cost <= request.budget + COST_TOLERANCE
    for allocation in window.allocations:
        assert allocation.resource.performance >= request.min_performance
    assert window.satisfies(request, budget=request.budget * (1 + 1e-12))


@settings(max_examples=60, deadline=None)
@given(
    seed=_seed_strategy,
    algorithm=st.sampled_from(list(SlotSearchAlgorithm)),
    use_index=_use_index,
)
def test_alternatives_are_mutually_disjoint(seed, algorithm, use_index):
    """No two alternatives — of any jobs — share processor time.

    This is the invariant the phase-2 DP relies on: subtracting each
    found window from the vacant list must make all later windows (of
    every job) disjoint from it.
    """
    slots = make_random_slot_list(seed)
    batch = make_random_batch(seed)
    result = find_alternatives(slots, batch, algorithm, use_index=use_index)
    windows = [
        window for windows in result.alternatives.values() for window in windows
    ]
    for i, first in enumerate(windows):
        for second in windows[i + 1 :]:
            assert not first.intersects(second)


@settings(max_examples=60, deadline=None)
@given(
    seed=_seed_strategy,
    algorithm=st.sampled_from(list(SlotSearchAlgorithm)),
    use_index=_use_index,
)
def test_alternatives_stay_inside_vacant_spans(seed, algorithm, use_index):
    """Every placement lies inside an originally vacant slot of its
    resource, and total vacant time is conserved: original vacancy =
    remaining vacancy + allocated spans."""
    slots = make_random_slot_list(seed)
    batch = make_random_batch(seed)
    vacant = {}
    total_vacant = 0.0
    for slot in slots:
        vacant.setdefault(slot.resource.uid, []).append((slot.start, slot.end))
        total_vacant += slot.end - slot.start
    result = find_alternatives(slots, batch, algorithm, use_index=use_index)
    allocated = 0.0
    for windows in result.alternatives.values():
        for window in windows:
            for allocation in window.allocations:
                spans = vacant.get(allocation.resource.uid, ())
                assert any(
                    start <= allocation.start and allocation.end <= end
                    for start, end in spans
                ), "allocation escapes the original vacant spans"
                allocated += allocation.end - allocation.start
    remaining = sum(slot.end - slot.start for slot in result.remaining_slots)
    assert remaining + allocated == pytest.approx(total_vacant, rel=1e-9)


@settings(max_examples=80, deadline=None)
@given(seed=_seed_strategy, request=_request_strategy)
def test_alp_feasible_implies_amp_feasible(seed, request):
    """With all performances ≥ 1 (runtime ≤ capped-slot runtime), an
    ALP window's own slots fit the AMP budget, so AMP finds a window —
    no later than ALP's."""
    slots = make_random_slot_list(seed)
    alp_window = alp.find_window(slots, request)
    if alp_window is None:
        return
    amp_window = amp.find_window(slots, request)
    assert amp_window is not None
    assert amp_window.start <= alp_window.start


# --------------------------------------------------------------------- #
# Partitioner properties (repro.core.partition)                         #
# --------------------------------------------------------------------- #
#
# The sharded search's byte-identity proof (tests/test_reference_oracles
# .py) leans on three partition contracts; they are pinned here over
# arbitrary uid multisets, not just the ones slot generators produce.

from repro.core import partition_uids, shard_owners  # noqa: E402

_uid_lists = st.lists(st.integers(min_value=0, max_value=500), max_size=60)
_shard_counts = st.integers(min_value=1, max_value=9)


@settings(max_examples=150, deadline=None)
@given(uids=_uid_lists, shards=_shard_counts)
def test_partition_is_a_disjoint_cover(uids, shards):
    """Every uid lands in exactly one block — no slot is scanned twice
    by the sharded search and none is dropped."""
    blocks = partition_uids(uids, shards)
    assert len(blocks) == shards
    flat = [uid for block in blocks for uid in block]
    assert len(flat) == len(set(flat))
    assert set(flat) == set(uids)
    owners = shard_owners(blocks)
    for index, block in enumerate(blocks):
        for uid in block:
            assert owners[uid] == index


@settings(max_examples=150, deadline=None)
@given(uids=_uid_lists, shards=_shard_counts)
def test_partition_ordering_is_stable(uids, shards):
    """Concatenating the blocks reproduces the sorted deduplicated uid
    set — for *every* shard count — and block sizes are balanced to
    within one, larger blocks first."""
    blocks = partition_uids(uids, shards)
    flat = [uid for block in blocks for uid in block]
    assert flat == sorted(set(uids))
    sizes = [len(block) for block in blocks]
    assert max(sizes) - min(sizes) <= 1
    assert sizes == sorted(sizes, reverse=True)


@settings(max_examples=150, deadline=None)
@given(uids=_uid_lists, shards=_shard_counts)
def test_partition_is_input_order_and_multiplicity_independent(uids, shards):
    """The split is a pure function of the uid *set*: reversing the
    input, duplicating entries, or calling twice changes nothing — the
    property that lets any process (or a revocation event arriving much
    later) recompute the same uid → shard routing with no shared state."""
    reference = partition_uids(uids, shards)
    assert partition_uids(reversed(uids), shards) == reference
    assert partition_uids(uids + uids, shards) == reference
    assert partition_uids(uids, shards) == reference


@settings(max_examples=80, deadline=None)
@given(uids=_uid_lists)
def test_partition_single_shard_is_identity(uids):
    """shards=1 degenerates to the sorted uid set in one block."""
    assert partition_uids(uids, 1) == [tuple(sorted(set(uids)))]
