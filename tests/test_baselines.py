"""Tests for the baseline schedulers (backfill, first-fit, greedy)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BackfillScheduler,
    BackfillVariant,
    backfill_find_window,
    cheapest_find_window,
    firstfit_find_window,
)
from repro.core import (
    InvalidRequestError,
    Job,
    Resource,
    ResourceRequest,
    Slot,
    SlotList,
)
from repro.core import alp, amp
from repro.grid import ComputeNode

from tests.conftest import make_resource, make_uniform_slots


class TestBackfillFindWindow:
    def test_finds_rectangular_window(self):
        slots = make_uniform_slots(3, length=100.0)
        request = ResourceRequest(node_count=3, volume=60.0)
        window = backfill_find_window(slots, request)
        assert window is not None
        assert window.start == 0.0
        assert window.length == pytest.approx(60.0)
        # Rectangular: every allocation spans the full volume.
        assert all(a.runtime == pytest.approx(60.0) for a in window.allocations)

    def test_ignores_prices(self):
        pricey = Slot(make_resource("p", price=100.0), 0.0, 100.0)
        slots = SlotList([pricey])
        request = ResourceRequest(node_count=1, volume=50.0, max_price=1.0)
        window = backfill_find_window(slots, request)
        assert window is not None  # backfill is price-blind

    def test_respects_performance_requirement(self):
        slow = Slot(make_resource("slow", performance=1.0), 0.0, 100.0)
        fast = Slot(make_resource("fast", performance=2.0), 0.0, 100.0)
        slots = SlotList([slow, fast])
        request = ResourceRequest(node_count=1, volume=50.0, min_performance=1.5)
        window = backfill_find_window(slots, request)
        assert window is not None
        assert window.resources()[0].name == "fast"

    def test_uses_etalon_duration_even_on_fast_nodes(self):
        # Backfill's homogeneity assumption: a fast node still gets
        # blocked for the full etalon volume.
        fast = Slot(make_resource("fast", performance=2.0), 0.0, 100.0)
        slots = SlotList([fast])
        request = ResourceRequest(node_count=1, volume=60.0)
        window = backfill_find_window(slots, request)
        assert window is not None
        assert window.length == pytest.approx(60.0)  # not 30

    def test_probes_later_start_times(self):
        a = Slot(make_resource("a"), 0.0, 50.0)
        b = Slot(make_resource("b"), 40.0, 200.0)
        c = Slot(make_resource("c"), 60.0, 200.0)
        slots = SlotList([a, b, c])
        request = ResourceRequest(node_count=2, volume=80.0)
        window = backfill_find_window(slots, request)
        assert window is not None
        assert window.start == 60.0
        assert {r.name for r in window.resources()} == {"b", "c"}

    def test_none_when_impossible(self):
        slots = make_uniform_slots(1, length=30.0)
        assert backfill_find_window(slots, ResourceRequest(2, 10.0)) is None
        assert backfill_find_window(slots, ResourceRequest(1, 50.0)) is None

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_never_beats_firstfit_on_heterogeneous_lists(self, seed):
        """First-fit exploits fast nodes (shorter runtimes); backfill's
        etalon-duration assumption can only need longer slots, so its
        window never starts earlier."""
        rng = random.Random(seed)
        slots = []
        start = 0.0
        for i in range(30):
            start += rng.uniform(0.0, 10.0)
            node = Resource(f"n{i}", performance=rng.uniform(1.0, 3.0), price=1.0)
            slots.append(Slot(node, start, start + rng.uniform(50.0, 300.0)))
        slot_list = SlotList(slots)
        request = ResourceRequest(node_count=rng.randint(1, 3), volume=rng.uniform(30.0, 120.0))
        backfill = backfill_find_window(slot_list, request)
        firstfit = firstfit_find_window(slot_list, request)
        if backfill is not None:
            assert firstfit is not None
            assert firstfit.start <= backfill.start + 1e-9


class TestFirstFit:
    def test_equals_alp_without_price(self):
        slots = make_uniform_slots(3, length=100.0, price=50.0)
        request = ResourceRequest(node_count=2, volume=40.0, max_price=1.0)
        assert alp.find_window(slots, request) is None
        window = firstfit_find_window(slots, request)
        assert window is not None
        assert window == alp.find_window(slots, request, check_price=False)


class TestCheapestWindow:
    def test_prefers_cheaper_later_window(self):
        pricey = Slot(make_resource("pricey", price=9.0), 0.0, 200.0)
        partner = Slot(make_resource("partner", price=1.0), 0.0, 200.0)
        cheap = Slot(make_resource("cheap", price=1.0), 100.0, 300.0)
        slots = SlotList([pricey, partner, cheap])
        request = ResourceRequest(node_count=2, volume=50.0, max_price=10.0)
        window = cheapest_find_window(slots, request)
        assert window is not None
        assert {r.name for r in window.resources()} == {"partner", "cheap"}
        # AMP, by contrast, takes the earliest acceptable one.
        earliest = amp.find_window(slots, request)
        assert earliest is not None
        assert earliest.start < window.start
        assert window.cost < earliest.cost

    def test_budget_respected(self):
        slots = make_uniform_slots(2, length=100.0, price=10.0)
        request = ResourceRequest(node_count=2, volume=50.0, max_price=4.0)
        assert cheapest_find_window(slots, request) is None

    def test_ties_resolve_to_earliest(self):
        a = Slot(make_resource("a", price=2.0), 0.0, 100.0)
        b = Slot(make_resource("b", price=2.0), 50.0, 150.0)
        slots = SlotList([a, b])
        request = ResourceRequest(node_count=1, volume=50.0, max_price=3.0)
        window = cheapest_find_window(slots, request)
        assert window is not None
        assert window.start == 0.0

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_never_costlier_than_amp(self, seed):
        rng = random.Random(seed)
        slots = []
        start = 0.0
        for i in range(25):
            start += rng.uniform(0.0, 10.0)
            node = Resource(
                f"n{i}", performance=rng.uniform(1.0, 3.0), price=rng.uniform(1.0, 6.0)
            )
            slots.append(Slot(node, start, start + rng.uniform(50.0, 300.0)))
        slot_list = SlotList(slots)
        request = ResourceRequest(
            node_count=rng.randint(1, 3), volume=rng.uniform(30.0, 120.0), max_price=6.0
        )
        amp_window = amp.find_window(slot_list, request)
        cheapest = cheapest_find_window(slot_list, request)
        if amp_window is None:
            assert cheapest is None
        else:
            assert cheapest is not None
            assert cheapest.cost <= amp_window.cost + 1e-9


class TestBackfillScheduler:
    def _nodes(self, count: int = 3) -> list[ComputeNode]:
        return [ComputeNode(f"n{i}", performance=1.0, price=2.0) for i in range(count)]

    def _jobs(self, *specs: tuple[int, float]) -> list[Job]:
        return [
            Job(ResourceRequest(node_count=n, volume=v), name=f"q{i}")
            for i, (n, v) in enumerate(specs)
        ]

    def test_validation(self):
        with pytest.raises(InvalidRequestError):
            BackfillScheduler([])
        with pytest.raises(InvalidRequestError):
            BackfillScheduler(self._nodes(), horizon=0.0)

    def test_conservative_fcfs_order(self):
        nodes = self._nodes(2)
        jobs = self._jobs((2, 50.0), (2, 30.0))
        assignments = BackfillScheduler(nodes).schedule(jobs)
        assert [a.job.name for a in assignments] == ["q0", "q1"]
        assert assignments[0].start == 0.0
        assert assignments[1].start == pytest.approx(50.0)

    def test_conservative_backfills_narrow_job_into_hole(self):
        nodes = self._nodes(3)
        nodes[0].run_local_job(0.0, 100.0)
        nodes[1].run_local_job(0.0, 100.0)
        # Wide job must wait for 3 nodes; narrow job fits node 2 now.
        jobs = self._jobs((3, 50.0), (1, 40.0))
        assignments = BackfillScheduler(nodes).schedule(jobs)
        by_name = {a.job.name: a for a in assignments}
        assert by_name["q0"].start == pytest.approx(100.0)
        assert by_name["q1"].start == 0.0

    def test_easy_does_not_delay_head(self):
        nodes = self._nodes(3)
        nodes[0].run_local_job(0.0, 100.0)
        nodes[1].run_local_job(0.0, 100.0)
        jobs = self._jobs((3, 50.0), (1, 200.0))
        scheduler = BackfillScheduler(nodes, variant=BackfillVariant.EASY)
        assignments = scheduler.schedule(jobs)
        by_name = {a.job.name: a for a in assignments}
        # The long narrow job would collide with the head's reservation
        # on node 2; EASY therefore parks it after the head.
        assert by_name["q0"].start == pytest.approx(100.0)
        assert by_name["q1"].start >= by_name["q0"].start

    def test_reservations_committed_to_schedules(self):
        nodes = self._nodes(2)
        jobs = self._jobs((2, 50.0))
        BackfillScheduler(nodes).schedule(jobs)
        for node in nodes:
            assert node.schedule.busy_time(0.0, 100.0) == pytest.approx(50.0)

    def test_assignment_cost(self):
        nodes = self._nodes(2)
        (assignment,) = BackfillScheduler(nodes).schedule(self._jobs((2, 50.0)))
        assert assignment.cost == pytest.approx((2.0 + 2.0) * 50.0)
        assert assignment.duration == pytest.approx(50.0)

    def test_unplaceable_job_skipped(self):
        nodes = self._nodes(1)
        jobs = self._jobs((5, 50.0), (1, 20.0))
        assignments = BackfillScheduler(nodes).schedule(jobs)
        assert [a.job.name for a in assignments] == ["q1"]
