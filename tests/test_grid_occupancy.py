"""Tests for repro.grid.occupancy."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SlotListError
from repro.grid import BusyInterval, OccupancySchedule


class TestBusyInterval:
    def test_length(self):
        assert BusyInterval(10.0, 25.0).length == pytest.approx(15.0)

    def test_rejects_empty_or_negative(self):
        with pytest.raises(SlotListError):
            BusyInterval(10.0, 10.0)
        with pytest.raises(SlotListError):
            BusyInterval(10.0, 5.0)


class TestReserve:
    def test_reserve_and_iterate_sorted(self):
        schedule = OccupancySchedule()
        schedule.reserve(50.0, 60.0)
        schedule.reserve(0.0, 10.0)
        schedule.reserve(20.0, 30.0)
        assert [iv.start for iv in schedule] == [0.0, 20.0, 50.0]

    def test_double_booking_rejected(self):
        schedule = OccupancySchedule()
        schedule.reserve(10.0, 30.0)
        for span in [(15.0, 20.0), (5.0, 15.0), (25.0, 40.0), (0.0, 50.0)]:
            with pytest.raises(SlotListError):
                schedule.reserve(*span)

    def test_adjacent_reservations_allowed(self):
        schedule = OccupancySchedule()
        schedule.reserve(10.0, 20.0)
        schedule.reserve(20.0, 30.0)  # touching is fine (half-open spans)
        schedule.reserve(0.0, 10.0)
        assert len(schedule) == 3

    def test_is_free(self):
        schedule = OccupancySchedule()
        schedule.reserve(10.0, 20.0)
        assert schedule.is_free(0.0, 10.0)
        assert schedule.is_free(20.0, 25.0)
        assert not schedule.is_free(15.0, 16.0)
        assert not schedule.is_free(5.0, 11.0)
        assert schedule.is_free(5.0, 5.0)  # empty span

    def test_release(self):
        schedule = OccupancySchedule()
        interval = schedule.reserve(10.0, 20.0)
        schedule.release(interval)
        assert len(schedule) == 0
        with pytest.raises(SlotListError):
            schedule.release(interval)

    def test_release_label(self):
        schedule = OccupancySchedule()
        schedule.reserve(0.0, 10.0, "job:a")
        schedule.reserve(20.0, 30.0, "job:a")
        schedule.reserve(40.0, 50.0, "job:b")
        assert schedule.release_label("job:a") == 2
        assert [iv.label for iv in schedule] == ["job:b"]


class TestVacantSpans:
    def test_empty_schedule_is_one_gap(self):
        schedule = OccupancySchedule()
        assert schedule.vacant_spans(0.0, 100.0) == [(0.0, 100.0)]

    def test_gaps_between_busy_intervals(self):
        schedule = OccupancySchedule()
        schedule.reserve(10.0, 20.0)
        schedule.reserve(50.0, 60.0)
        assert schedule.vacant_spans(0.0, 100.0) == [
            (0.0, 10.0),
            (20.0, 50.0),
            (60.0, 100.0),
        ]

    def test_busy_clipped_to_horizon(self):
        schedule = OccupancySchedule()
        schedule.reserve(0.0, 30.0)
        schedule.reserve(90.0, 150.0)
        assert schedule.vacant_spans(10.0, 100.0) == [(30.0, 90.0)]

    def test_fully_busy_horizon(self):
        schedule = OccupancySchedule()
        schedule.reserve(0.0, 100.0)
        assert schedule.vacant_spans(20.0, 80.0) == []

    def test_degenerate_horizon(self):
        schedule = OccupancySchedule()
        assert schedule.vacant_spans(50.0, 50.0) == []
        with pytest.raises(SlotListError):
            schedule.vacant_spans(60.0, 50.0)


class TestAccounting:
    def test_busy_time_with_labels(self):
        schedule = OccupancySchedule()
        schedule.reserve(0.0, 10.0, "local:x")
        schedule.reserve(20.0, 50.0, "job:y")
        assert schedule.busy_time(0.0, 100.0) == pytest.approx(40.0)
        assert schedule.busy_time(0.0, 100.0, label_prefix="local:") == pytest.approx(10.0)
        assert schedule.busy_time(0.0, 100.0, label_prefix="job:") == pytest.approx(30.0)

    def test_busy_time_clipping(self):
        schedule = OccupancySchedule()
        schedule.reserve(0.0, 100.0)
        assert schedule.busy_time(40.0, 60.0) == pytest.approx(20.0)

    def test_utilization(self):
        schedule = OccupancySchedule()
        schedule.reserve(0.0, 25.0)
        assert schedule.utilization(0.0, 100.0) == pytest.approx(0.25)
        assert schedule.utilization(50.0, 50.0) == 0.0

    def test_prune_before(self):
        schedule = OccupancySchedule()
        schedule.reserve(0.0, 10.0)
        schedule.reserve(20.0, 30.0)
        schedule.reserve(40.0, 50.0)
        assert schedule.prune_before(30.0) == 2
        assert [iv.start for iv in schedule] == [40.0]


# --------------------------------------------------------------------- #
# Property: vacant spans and busy intervals tile the horizon            #
# --------------------------------------------------------------------- #


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=900.0),
            st.floats(min_value=1.0, max_value=100.0),
        ),
        max_size=15,
    )
)
def test_vacancy_complements_busy(spans):
    schedule = OccupancySchedule()
    for start, length in spans:
        try:
            schedule.reserve(start, start + length)
        except SlotListError:
            pass  # overlapping draws are simply skipped
    horizon = (0.0, 1000.0)
    vacant = sum(end - start for start, end in schedule.vacant_spans(*horizon))
    busy = schedule.busy_time(*horizon)
    assert vacant + busy == pytest.approx(1000.0)
    # Vacant spans never overlap a busy interval.
    for start, end in schedule.vacant_spans(*horizon):
        assert schedule.is_free(start, end)
