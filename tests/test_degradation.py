"""Graceful degradation: budget-bounded phase-2 optimization.

Under an :class:`OptimizationBudget` the DP must *degrade* — step the
discretization down, then fall back to a greedy per-job selection — and
never raise on budget exhaustion.  Genuine infeasibility (no selection
fits the limit at all) must still raise, budget or not.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BatchScheduler,
    Criterion,
    InfeasibleConstraintError,
    Job,
    OptimizationBudget,
    OptimizationError,
    ResourceRequest,
    SchedulerConfig,
    Slot,
    TaskAllocation,
    Window,
)
from repro.core.optimize import brute_force, optimize, time_quota, vo_budget

from tests.conftest import make_resource


def _window(price: float, volume: float, start: float = 0.0) -> Window:
    node = make_resource(price=price)
    slot = Slot(node, start, start + volume)
    request = ResourceRequest(node_count=1, volume=volume)
    return Window(request, [TaskAllocation(slot, start, start + volume)])


def _job(name: str) -> Job:
    return Job(ResourceRequest(1, 10.0), name=name)


def _alts(spec: dict[str, list[tuple[float, float]]]) -> dict[Job, list[Window]]:
    mapping: dict[Job, list[Window]] = {}
    cursor = 0.0
    for name, pairs in spec.items():
        windows = []
        for price, volume in pairs:
            windows.append(_window(price, volume, start=cursor))
            cursor += volume + 1.0
        mapping[_job(name)] = windows
    return mapping


SPEC = {
    "a": [(4.0, 3.0), (2.0, 6.0), (1.0, 9.0)],
    "b": [(5.0, 2.0), (3.0, 5.0), (2.0, 8.0)],
    "c": [(3.0, 4.0), (2.0, 7.0)],
}


class TestBudgetValidation:
    def test_rejects_non_positive_max_cells(self):
        with pytest.raises(OptimizationError, match="max_cells"):
            OptimizationBudget(max_cells=0)

    def test_rejects_non_positive_or_non_finite_deadline(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(OptimizationError, match="deadline"):
                OptimizationBudget(deadline=bad)

    def test_rejects_non_positive_min_resolution(self):
        with pytest.raises(OptimizationError, match="min_resolution"):
            OptimizationBudget(min_resolution=0)

    def test_defaults_are_unbounded(self):
        budget = OptimizationBudget()
        assert budget.max_cells is None
        assert budget.deadline is None


class TestResolutionStepdown:
    def test_stepped_down_result_is_feasible_and_degraded(self):
        alts = _alts(SPEC)
        limit = 20.0
        exact = optimize(alts, Criterion.COST, limit)
        assert not exact.degraded
        # 8 alternatives x (2000 + 1) bins >> 2000 cells: forces step-down
        # but still leaves room for a small DP table.
        squeezed = optimize(
            alts,
            Criterion.COST,
            limit,
            budget=OptimizationBudget(max_cells=2000, min_resolution=10),
        )
        assert squeezed.degraded
        # Floor rounding: bounded overshoot, never more than limit*(1+n/res).
        jobs = len(alts)
        assert squeezed.total_time <= limit * (1 + jobs / 10) + 1e-9
        assert set(squeezed.selection) == set(alts)

    def test_unbounded_budget_changes_nothing(self):
        alts = _alts(SPEC)
        plain = optimize(alts, Criterion.TIME, 40.0)
        budgeted = optimize(
            alts, Criterion.TIME, 40.0, budget=OptimizationBudget()
        )
        assert budgeted == plain
        assert not budgeted.degraded

    def test_exact_resolution_still_exact_when_it_fits(self):
        alts = _alts(SPEC)
        reference = brute_force(alts, Criterion.COST, 20.0)
        generous = optimize(
            alts,
            Criterion.COST,
            20.0,
            budget=OptimizationBudget(max_cells=100_000_000),
        )
        assert not generous.degraded
        assert generous.total_cost == pytest.approx(reference.total_cost)


class TestGreedyFallback:
    def test_exhausted_cells_fall_back_to_greedy_not_raise(self):
        alts = _alts(SPEC)
        limit = 20.0
        # Even min_resolution=1 needs 8 * 2 = 16 cells; cap below that.
        result = optimize(
            alts,
            Criterion.COST,
            limit,
            budget=OptimizationBudget(max_cells=8, min_resolution=1),
        )
        assert result.degraded
        assert set(result.selection) == set(alts)
        # Greedy works in exact arithmetic: the limit is strictly honoured.
        assert result.total_time <= limit + 1e-9

    def test_elapsed_deadline_falls_back_to_greedy(self):
        alts = _alts(SPEC)
        result = optimize(
            alts,
            Criterion.COST,
            20.0,
            budget=OptimizationBudget(deadline=1e-12),
        )
        assert result.degraded
        assert result.total_time <= 20.0 + 1e-9

    def test_greedy_improves_on_base_selection_within_slack(self):
        # Cheapest-time base picks the short windows; slack then buys the
        # cheaper long window for at least one job.
        alts = _alts({"a": [(4.0, 3.0), (1.0, 9.0)], "b": [(5.0, 2.0)]})
        result = optimize(
            alts,
            Criterion.COST,
            20.0,
            budget=OptimizationBudget(deadline=1e-12),
        )
        assert result.degraded
        # With slack 20 - (3+2) = 15 the sweep swaps job a to the
        # 9-long window costing 9 instead of 12.
        assert result.total_cost == pytest.approx(9.0 + 10.0)

    def test_genuine_infeasibility_still_raises_under_budget(self):
        alts = _alts(SPEC)
        # Fastest possible total time is 3 + 2 + 4 = 9; limit below that
        # is infeasible no matter how we degrade.
        with pytest.raises(InfeasibleConstraintError):
            optimize(
                alts,
                Criterion.COST,
                5.0,
                budget=OptimizationBudget(max_cells=8, min_resolution=1),
            )

    def test_empty_batch_short_circuits(self):
        result = optimize(
            {}, Criterion.TIME, 0.0, budget=OptimizationBudget(deadline=1e-12)
        )
        assert result.selection == {}
        assert not result.degraded


class TestVoBudgetDegradation:
    def test_greedy_budget_is_feasible_lower_bound(self):
        alts = _alts(SPEC)
        quota = time_quota(alts)
        exact = vo_budget(alts, quota)
        degraded = vo_budget(
            alts,
            quota,
            budget=OptimizationBudget(max_cells=8, min_resolution=1),
        )
        assert 0.0 < degraded <= exact + 1e-9

    def test_infeasible_quota_still_raises_under_budget(self):
        alts = _alts(SPEC)
        with pytest.raises(InfeasibleConstraintError):
            vo_budget(
                alts,
                5.0,
                budget=OptimizationBudget(max_cells=8, min_resolution=1),
            )


class TestSchedulerWiring:
    def _pipeline(self, budget):
        from repro.core import SlotList

        slots = []
        cursor = 0.0
        for price in (1.0, 2.0, 3.0, 4.0):
            node = make_resource(price=price)
            slots.append(Slot(node, cursor, cursor + 50.0))
        batch_jobs = [
            Job(ResourceRequest(1, 12.0), name=f"j{i}") for i in range(3)
        ]
        from repro.core.job import Batch

        config = SchedulerConfig(budget=budget)
        outcome = BatchScheduler(config).schedule(SlotList(slots), Batch(batch_jobs))
        return outcome

    def test_outcome_reports_degraded(self):
        strict = OptimizationBudget(deadline=1e-12)
        outcome = self._pipeline(strict)
        if outcome.combination.selection:
            assert outcome.degraded
            assert outcome.combination.degraded
        unbounded = self._pipeline(None)
        assert not unbounded.degraded

    def test_degraded_flag_reaches_iteration_report(self):
        meta = _build_meta(
            scheduler=BatchScheduler(
                SchedulerConfig(budget=OptimizationBudget(deadline=1e-12))
            )
        )
        for i in range(3):
            meta.submit(Job(ResourceRequest(1, 10.0), name=f"job{i}"))
        report = meta.run_iteration(0.0)
        if report.scheduled:
            assert report.degraded


def _build_meta(**kwargs):
    from repro.grid import Cluster, ComputeNode, Metascheduler, VOEnvironment

    nodes = [
        ComputeNode(f"n{i}", performance=1.0 + i * 0.5, price=1.0 + i)
        for i in range(4)
    ]
    environment = VOEnvironment([Cluster("c0", nodes)])
    return Metascheduler(environment, period=50.0, horizon=500.0, **kwargs)


class TestCheckpointRoundTrip:
    def test_budget_survives_snapshot_restore(self):
        from repro.grid import restore_metascheduler, snapshot_metascheduler

        budget = OptimizationBudget(max_cells=5000, deadline=2.5, min_resolution=25)
        meta = _build_meta(
            scheduler=BatchScheduler(SchedulerConfig(budget=budget))
        )
        restored = restore_metascheduler(snapshot_metascheduler(meta))
        assert restored.scheduler.config.budget == budget

    def test_absent_budget_round_trips_as_none(self):
        from repro.grid import restore_metascheduler, snapshot_metascheduler

        meta = _build_meta()
        restored = restore_metascheduler(snapshot_metascheduler(meta))
        assert restored.scheduler.config.budget is None
