"""Tests for the iterative metascheduler and workload trace."""

from __future__ import annotations

import pytest

from repro.core import (
    BatchScheduler,
    InfeasiblePolicy,
    InvalidRequestError,
    Job,
    ResourceRequest,
    SchedulerConfig,
)
from repro.grid import (
    Cluster,
    ComputeNode,
    JobState,
    Metascheduler,
    VOEnvironment,
    WorkloadTrace,
)


def _environment(node_count: int = 4) -> VOEnvironment:
    nodes = [ComputeNode(f"n{i}", performance=1.0, price=2.0) for i in range(node_count)]
    return VOEnvironment([Cluster("c", nodes)])


def _scheduler() -> BatchScheduler:
    return BatchScheduler(
        SchedulerConfig(infeasible_policy=InfeasiblePolicy.EARLIEST)
    )


def _job(node_count: int = 1, volume: float = 50.0, name: str = "") -> Job:
    return Job(
        ResourceRequest(node_count=node_count, volume=volume, max_price=3.0), name=name
    )


class TestWorkloadTrace:
    def test_lifecycle(self):
        trace = WorkloadTrace()
        job = _job(name="a")
        record = trace.add(job, submit_time=5.0)
        assert record.state is JobState.PENDING
        trace.mark_postponed(job)
        assert record.postponements == 1
        assert record.wait_time is None

    def test_summary_empty(self):
        summary = WorkloadTrace().summary()
        assert summary.submitted == 0
        assert summary.mean_wait_time is None
        assert summary.makespan is None
        assert summary.total_cost == 0.0

    def test_state_counts_cover_every_state(self):
        trace = WorkloadTrace()
        trace.add(_job(name="a"), submit_time=0.0)
        counts = trace.state_counts()
        assert counts == {
            "pending": 1,
            "scheduled": 0,
            "completed": 0,
            "rejected": 0,
        }

    def test_owner_income_empty_without_placements(self):
        trace = WorkloadTrace()
        trace.add(_job(name="a"), submit_time=0.0)
        assert trace.owner_income() == {}
        assert trace.summary().total_owner_income == 0.0


class TestMetaschedulerValidation:
    def test_rejects_bad_parameters(self):
        environment = _environment()
        with pytest.raises(InvalidRequestError):
            Metascheduler(environment, period=0.0)
        with pytest.raises(InvalidRequestError):
            Metascheduler(environment, horizon=-1.0)
        with pytest.raises(InvalidRequestError):
            Metascheduler(environment, max_batch_size=0)

    def test_run_rejects_reversed_span(self):
        scheduler = Metascheduler(_environment(), _scheduler())
        with pytest.raises(InvalidRequestError):
            scheduler.run(until=-10.0)


class TestSingleIteration:
    def test_schedules_submitted_job(self):
        environment = _environment()
        meta = Metascheduler(environment, _scheduler(), horizon=400.0)
        job = _job(node_count=2, name="g1")
        meta.submit(job)
        report = meta.run_iteration(0.0)
        assert report.scheduled == 1
        assert report.postponed == 0
        record = meta.trace.record_for(job)
        assert record.state is JobState.SCHEDULED
        assert record.window is not None
        # The reservation really landed in the environment.
        assert environment.total_income(0.0, 400.0) > 0.0

    def test_future_submission_not_batched(self):
        meta = Metascheduler(_environment(), _scheduler())
        meta.submit(_job(), at_time=100.0)
        report = meta.run_iteration(0.0)
        assert report.batch_size == 0
        assert meta.backlog() == 1

    def test_impossible_job_postponed_each_iteration(self):
        meta = Metascheduler(_environment(node_count=1), _scheduler(), horizon=300.0)
        job = _job(node_count=3, name="huge")  # needs 3 nodes, VO has 1
        meta.submit(job)
        for index in range(3):
            report = meta.run_iteration(float(index) * 60.0)
            assert report.postponed == 1
        assert meta.trace.record_for(job).postponements == 3

    def test_postponement_limit_rejects(self):
        meta = Metascheduler(
            _environment(node_count=1),
            _scheduler(),
            max_postponements=1,
        )
        job = _job(node_count=3, name="huge")
        meta.submit(job)
        meta.run_iteration(0.0)
        report = meta.run_iteration(60.0)
        assert report.rejected == 1
        assert meta.trace.record_for(job).state is JobState.REJECTED
        assert meta.backlog() == 0

    def test_max_batch_size_defers_overflow(self):
        meta = Metascheduler(_environment(), _scheduler(), max_batch_size=1)
        first, second = _job(name="a"), _job(name="b")
        meta.submit(first)
        meta.submit(second)
        report = meta.run_iteration(0.0)
        assert report.batch_size == 1
        assert report.scheduled == 1
        # The overflow job is neither postponed nor rejected — it waits.
        assert meta.trace.record_for(second).postponements == 0
        assert meta.backlog() == 1


class TestRun:
    def test_periodic_ticks(self):
        meta = Metascheduler(_environment(), _scheduler(), period=50.0)
        reports = meta.run(until=200.0)
        assert [report.time for report in reports] == [0.0, 50.0, 100.0, 150.0, 200.0]

    def test_eventually_drains_queue(self):
        environment = _environment(node_count=2)
        meta = Metascheduler(environment, _scheduler(), period=100.0, horizon=500.0)
        for index in range(6):
            meta.submit(_job(node_count=2, volume=100.0, name=f"g{index}"), at_time=0.0)
        meta.run(until=2000.0)
        summary = meta.trace.summary()
        assert summary.scheduled == 6
        assert meta.backlog() == 0

    def test_completions_marked(self):
        meta = Metascheduler(_environment(), _scheduler(), period=100.0, horizon=400.0)
        meta.submit(_job(volume=50.0, name="quick"))
        meta.run(until=1000.0)
        assert meta.completed_jobs() == 1

    def test_windows_of_different_jobs_disjoint_in_environment(self):
        environment = _environment(node_count=2)
        meta = Metascheduler(environment, _scheduler(), period=50.0, horizon=600.0)
        for index in range(5):
            meta.submit(_job(node_count=1, volume=80.0, name=f"g{index}"))
        meta.run(until=600.0)
        # If any two committed windows overlapped, commit_window would
        # have raised; additionally the schedules must be clean.
        for node in environment.nodes():
            intervals = node.schedule.intervals()
            for left, right in zip(intervals, intervals[1:]):
                assert left.end <= right.start

    def test_trace_summary_metrics(self):
        meta = Metascheduler(_environment(), _scheduler(), period=50.0, horizon=400.0)
        meta.submit(_job(volume=50.0, name="a"), at_time=0.0)
        meta.submit(_job(volume=50.0, name="b"), at_time=25.0)
        meta.run(until=300.0)
        summary = meta.trace.summary()
        assert summary.submitted == 2
        assert summary.scheduled == 2
        assert summary.mean_wait_time is not None and summary.mean_wait_time >= 0.0
        assert summary.total_cost > 0.0
        assert summary.makespan is not None

    def test_summary_state_counts_and_owner_income(self):
        meta = Metascheduler(_environment(), _scheduler(), period=50.0, horizon=400.0)
        meta.submit(_job(volume=50.0, name="a"), at_time=0.0)
        meta.submit(_job(volume=50.0, name="b"), at_time=25.0)
        meta.run(until=1000.0)
        summary = meta.trace.summary()
        assert sum(summary.state_counts.values()) == summary.submitted
        assert summary.state_counts["completed"] + summary.state_counts[
            "scheduled"
        ] == summary.scheduled
        # Every coin users spent landed on some owner's node.
        assert summary.total_owner_income == pytest.approx(summary.total_cost)
        assert all(income > 0.0 for income in summary.owner_income.values())


class TestMetaschedulerTelemetry:
    """The telemetry gauges and the audit log must agree by construction."""

    def test_meta_gauges_match_trace_state_counts(self):
        from repro import obs

        obs.disable()
        telemetry = obs.configure(enabled=True)
        try:
            meta = Metascheduler(
                _environment(), _scheduler(), period=50.0, horizon=400.0
            )
            meta.submit(_job(volume=50.0, name="a"), at_time=0.0)
            meta.submit(_job(volume=50.0, name="b"), at_time=25.0)
            meta.run(until=300.0)
            counts = meta.trace.state_counts()
            for state, expected in counts.items():
                gauge = telemetry.registry.get("meta.jobs", state=state)
                assert gauge is not None, f"missing meta.jobs{{state={state}}}"
                assert gauge.value == expected
            iterations = telemetry.registry.get("meta.iterations")
            assert iterations.value == len(meta.reports)
            scheduled = telemetry.registry.get("meta.scheduled")
            assert scheduled.value == sum(r.scheduled for r in meta.reports)
            # One root span tree per iteration.
            assert len(telemetry.traces) == len(meta.reports)
            assert all(root.name == "meta.iteration" for root in telemetry.traces)
        finally:
            obs.disable()


class TestDemandPricing:
    """Section 7 future work: supply-and-demand pricing in the cycle."""

    def _busy_environment(self):
        environment = _environment(node_count=2)
        for node in environment.nodes():
            node.run_local_job(0.0, 80.0)  # 80% busy over the first period
        return environment

    def test_surge_raises_job_costs(self):
        from repro.core import DemandAdjustedPricing

        job_costs = {}
        for sensitivity in (None, 2.0):
            environment = self._busy_environment()
            pricing = (
                None
                if sensitivity is None
                else DemandAdjustedPricing(sensitivity=sensitivity)
            )
            meta = Metascheduler(
                environment,
                _scheduler(),
                period=100.0,
                horizon=400.0,
                demand_pricing=pricing,
            )
            # Generous price cap: the surged price must stay affordable,
            # otherwise the job is postponed instead of repriced.
            job = Job(
                ResourceRequest(node_count=1, volume=50.0, max_price=10.0),
                name=f"g-{sensitivity}",
            )
            meta.submit(job)
            meta.run_iteration(0.0)
            record = meta.trace.record_for(job)
            assert record.window is not None
            job_costs[sensitivity] = record.window.cost
        assert job_costs[2.0] > job_costs[None]

    def test_idle_environment_no_surge(self):
        from repro.core import DemandAdjustedPricing

        environment = _environment(node_count=2)
        meta = Metascheduler(
            environment,
            _scheduler(),
            period=100.0,
            horizon=400.0,
            demand_pricing=DemandAdjustedPricing(sensitivity=5.0),
        )
        job = _job(volume=50.0, name="idle-job")
        meta.submit(job)
        meta.run_iteration(0.0)
        record = meta.trace.record_for(job)
        assert record.window is not None
        # Zero utilization -> multiplier 1 -> base price 2.0 per unit.
        assert record.window.cost == pytest.approx(2.0 * 50.0)
