"""Tests for repro.grid.local and repro.grid.environment."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    InvalidRequestError,
    ResourceRequest,
    SlotListError,
)
from repro.core import amp
from repro.grid import (
    Cluster,
    ClusterSpec,
    ComputeNode,
    LocalJobFlow,
    LocalLoadModel,
    VOEnvironment,
)


def _small_environment() -> VOEnvironment:
    nodes = [ComputeNode(f"n{i}", performance=1.0, price=2.0) for i in range(3)]
    return VOEnvironment([Cluster("c", nodes)])


class TestLocalJobFlow:
    def test_occupies_within_horizon(self):
        cluster = ClusterSpec("c", node_count=5).build(random.Random(3))
        flow = LocalJobFlow(seed=3)
        created = flow.occupy(cluster, 0.0, 2000.0)
        assert created > 0
        for node in cluster:
            for interval in node.schedule:
                assert 0.0 <= interval.start < interval.end <= 2000.0
                assert interval.label.startswith("local:")

    def test_leaves_vacant_gaps_in_model_range(self):
        model = LocalLoadModel(vacant_length_range=(50.0, 300.0))
        cluster = ClusterSpec("c", node_count=8).build(random.Random(5))
        LocalJobFlow(model, seed=5).occupy(cluster, 0.0, 3000.0)
        for node in cluster:
            spans = node.schedule.vacant_spans(0.0, 3000.0)
            # Interior gaps respect the configured vacancy range; the
            # final gap is clipped by the horizon and may be shorter or
            # merged, so only interior ones are checked.
            for start, end in spans[:-1]:
                assert end - start >= 50.0 - 1e-9

    def test_deterministic_under_seed(self):
        spans = []
        for _ in range(2):
            cluster = ClusterSpec("c", node_count=4).build(random.Random(11))
            LocalJobFlow(seed=11).occupy(cluster, 0.0, 1500.0)
            spans.append(
                [
                    (iv.start, iv.end)
                    for node in cluster
                    for iv in node.schedule
                ]
            )
        assert spans[0] == spans[1]

    def test_rejects_empty_horizon(self):
        cluster = ClusterSpec("c", node_count=1).build(random.Random(0))
        with pytest.raises(InvalidRequestError):
            LocalJobFlow().occupy(cluster, 100.0, 100.0)

    def test_model_validation(self):
        with pytest.raises(InvalidRequestError):
            LocalLoadModel(busy_length_range=(10.0, 5.0))
        with pytest.raises(InvalidRequestError):
            LocalLoadModel(synchronized_release_probability=1.5)


class TestVOEnvironment:
    def test_rejects_empty(self):
        with pytest.raises(InvalidRequestError):
            VOEnvironment([])

    def test_rejects_shared_nodes(self):
        node = ComputeNode("shared")
        with pytest.raises(InvalidRequestError):
            VOEnvironment([Cluster("a", [node]), Cluster("b", [node])])

    def test_generate_from_specs(self):
        environment = VOEnvironment.generate(
            [ClusterSpec("a", node_count=3), ClusterSpec("b", node_count=2)], seed=1
        )
        assert environment.node_count() == 5
        assert {cluster.name for cluster in environment.clusters} == {"a", "b"}

    def test_vacant_slot_list_sorted_across_nodes(self):
        environment = _small_environment()
        nodes = list(environment.nodes())
        nodes[0].run_local_job(0.0, 100.0)
        nodes[1].run_local_job(0.0, 40.0)
        slots = environment.vacant_slot_list(0.0, 500.0)
        assert slots.is_sorted()
        assert len(slots) == 3
        assert slots[0].start == 0.0  # the never-busy node

    def test_price_multiplier(self):
        environment = _small_environment()
        base = environment.vacant_slot_list(0.0, 100.0)
        surged = environment.vacant_slot_list(0.0, 100.0, price_multiplier=1.5)
        for cheap, dear in zip(base, surged):
            assert dear.price == pytest.approx(1.5 * cheap.price)
        with pytest.raises(InvalidRequestError):
            environment.vacant_slot_list(0.0, 100.0, price_multiplier=0.0)

    def test_commit_window_roundtrip(self):
        environment = _small_environment()
        slots = environment.vacant_slot_list(0.0, 500.0)
        request = ResourceRequest(node_count=2, volume=50.0, max_price=3.0)
        window = amp.find_window(slots, request)
        assert window is not None
        environment.commit_window("jobA", window)
        # The committed spans disappear from the next slot list.
        remaining = environment.vacant_slot_list(0.0, 500.0)
        assert remaining.total_vacant_time() == pytest.approx(
            slots.total_vacant_time() - sum(a.runtime for a in window.allocations)
        )
        # And can be cancelled again.
        assert environment.cancel_job("jobA") == 2
        restored = environment.vacant_slot_list(0.0, 500.0)
        assert restored.total_vacant_time() == pytest.approx(slots.total_vacant_time())

    def test_commit_window_rolls_back_on_conflict(self):
        environment = _small_environment()
        slots = environment.vacant_slot_list(0.0, 500.0)
        request = ResourceRequest(node_count=2, volume=50.0, max_price=3.0)
        window = amp.find_window(slots, request)
        assert window is not None
        # Occupy one of the window's spans behind the scheduler's back.
        victim = window.allocations[-1]
        environment.node_for(victim.resource.uid).run_local_job(
            victim.start, victim.end, "sneaky"
        )
        with pytest.raises(SlotListError):
            environment.commit_window("jobA", window)
        # Nothing of jobA must remain reserved.
        assert environment.cancel_job("jobA") == 0

    def test_commit_foreign_window_rejected(self):
        environment = _small_environment()
        other = _small_environment()
        slots = other.vacant_slot_list(0.0, 500.0)
        window = amp.find_window(slots, ResourceRequest(node_count=1, volume=50.0))
        assert window is not None
        with pytest.raises(SlotListError):
            environment.commit_window("jobA", window)

    def test_utilization_and_income(self):
        environment = _small_environment()
        nodes = list(environment.nodes())
        nodes[0].run_local_job(0.0, 100.0)
        nodes[1].reserve_for("jobZ", 0.0, 50.0)
        assert environment.utilization(0.0, 100.0) == pytest.approx((1.0 + 0.5) / 3)
        assert environment.total_income(0.0, 100.0) == pytest.approx(100.0)

    def test_prune_before(self):
        environment = _small_environment()
        nodes = list(environment.nodes())
        nodes[0].run_local_job(0.0, 10.0)
        nodes[1].run_local_job(0.0, 10.0)
        nodes[1].run_local_job(20.0, 30.0)
        assert environment.prune_before(15.0) == 2
