"""Unit and property tests for the AMP slot-search algorithm."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Resource,
    ResourceRequest,
    Slot,
    SlotList,
    WindowNotFoundError,
)
from repro.core import alp, amp

from tests.conftest import make_resource, make_uniform_slots


class TestCheapestSubset:
    def test_picks_n_cheapest_by_total_cost(self):
        request = ResourceRequest(node_count=2, volume=100.0)
        # Fast+expensive node is cheaper in total than slow+cheap one:
        # 4*50=200 < 3*100=300.
        fast = Slot(make_resource("fast", performance=2.0, price=4.0), 0.0, 200.0)
        slow = Slot(make_resource("slow", performance=1.0, price=3.0), 0.0, 200.0)
        mid = Slot(make_resource("mid", performance=1.0, price=2.5), 0.0, 200.0)
        chosen, total = amp.cheapest_subset([fast, slow, mid], request)
        names = {slot.resource.name for slot in chosen}
        assert names == {"fast", "mid"}
        assert total == pytest.approx(200.0 + 250.0)

    def test_requires_enough_candidates(self):
        request = ResourceRequest(node_count=3, volume=10.0)
        with pytest.raises(ValueError):
            amp.cheapest_subset([Slot(make_resource(), 0.0, 100.0)], request)


class TestFindWindow:
    def test_within_budget_first_window(self):
        slots = make_uniform_slots(2, length=100.0, price=3.0)
        request = ResourceRequest(node_count=2, volume=50.0, max_price=4.0)
        window = amp.find_window(slots, request)
        assert window is not None
        assert window.start == 0.0
        assert window.cost <= request.budget

    def test_over_budget_advances_to_cheaper_window(self):
        pricey_a = Slot(make_resource("pa", price=10.0), 0.0, 500.0)
        pricey_b = Slot(make_resource("pb", price=10.0), 0.0, 500.0)
        cheap_a = Slot(make_resource("ca", price=1.0), 100.0, 500.0)
        cheap_b = Slot(make_resource("cb", price=1.0), 120.0, 500.0)
        slots = SlotList([pricey_a, pricey_b, cheap_a, cheap_b])
        request = ResourceRequest(node_count=2, volume=50.0, max_price=2.0)  # S = 200
        window = amp.find_window(slots, request)
        assert window is not None
        assert window.start == 120.0
        assert {r.name for r in window.resources()} == {"ca", "cb"}

    def test_mixes_expensive_and_cheap_within_budget(self):
        # ALP (cap 3) can never use 'gold'; AMP can because the cheap
        # partner leaves budget headroom: (1+5)*50=300 <= S=300.
        gold = Slot(make_resource("gold", price=5.0), 0.0, 500.0)
        dirt = Slot(make_resource("dirt", price=1.0), 0.0, 500.0)
        slots = SlotList([gold, dirt])
        request = ResourceRequest(node_count=2, volume=50.0, max_price=3.0)
        assert alp.find_window(slots, request) is None
        window = amp.find_window(slots, request)
        assert window is not None
        assert {r.name for r in window.resources()} == {"gold", "dirt"}

    def test_budget_boundary_is_inclusive(self):
        a = Slot(make_resource("a", price=5.0), 0.0, 100.0)
        b = Slot(make_resource("b", price=5.0), 0.0, 100.0)
        slots = SlotList([a, b])
        # S = 5*80*2 = 800 = exact window cost, as in the paper's W1.
        request = ResourceRequest(node_count=2, volume=80.0, max_price=5.0)
        window = amp.find_window(slots, request)
        assert window is not None
        assert window.cost == pytest.approx(request.budget)

    def test_explicit_budget_overrides_request(self):
        slots = make_uniform_slots(2, length=100.0, price=4.0)
        request = ResourceRequest(node_count=2, volume=50.0, max_price=4.0)
        # Shrunk budget rho=0.5 -> 200 < cost 400: infeasible anywhere.
        assert amp.find_window(slots, request, budget=request.scaled_budget(0.5)) is None

    def test_no_price_cap_means_infinite_budget(self):
        slots = make_uniform_slots(2, length=100.0, price=1000.0)
        request = ResourceRequest(node_count=2, volume=50.0)
        window = amp.find_window(slots, request)
        assert window is not None
        assert math.isinf(request.budget)

    def test_keeps_extra_candidates_out_of_window(self):
        # Three concurrent slots but N=2: the two cheapest form the
        # window, the third "is returned to the source slot list" (it was
        # never removed — the input list is untouched).
        slots = make_uniform_slots(3, length=100.0, price=2.0)
        request = ResourceRequest(node_count=2, volume=50.0, max_price=2.0)
        before = list(slots)
        window = amp.find_window(slots, request)
        assert window is not None
        assert window.slots_number == 2
        assert list(slots) == before

    def test_performance_requirement_still_applies(self):
        slow = Slot(make_resource("slow", performance=1.0, price=1.0), 0.0, 500.0)
        fast = Slot(make_resource("fast", performance=2.0, price=1.0), 0.0, 500.0)
        slots = SlotList([slow, fast])
        request = ResourceRequest(node_count=1, volume=50.0, min_performance=1.5, max_price=10.0)
        window = amp.find_window(slots, request)
        assert window is not None
        assert window.resources()[0].name == "fast"

    def test_failure_returns_none(self):
        slots = make_uniform_slots(1, length=100.0)
        request = ResourceRequest(node_count=2, volume=50.0, max_price=10.0)
        assert amp.find_window(slots, request) is None

    def test_require_window_raises(self):
        request = ResourceRequest(node_count=1, volume=50.0, max_price=1.0)
        with pytest.raises(WindowNotFoundError) as excinfo:
            amp.require_window(SlotList(), request, job_name="j")
        assert excinfo.value.job_name == "j"


# --------------------------------------------------------------------- #
# Property-based invariants                                             #
# --------------------------------------------------------------------- #


def _random_slot_list(seed: int, count: int) -> SlotList:
    rng = random.Random(seed)
    slots = []
    start = 0.0
    for i in range(count):
        if rng.random() > 0.4:
            start += rng.uniform(0.0, 10.0)
        performance = rng.uniform(1.0, 3.0)
        node = Resource(f"n{i}", performance=performance, price=rng.uniform(1.0, 6.0))
        slots.append(Slot(node, start, start + rng.uniform(50.0, 300.0)))
    return SlotList(slots)


_request_strategy = st.builds(
    ResourceRequest,
    node_count=st.integers(min_value=1, max_value=5),
    volume=st.floats(min_value=10.0, max_value=200.0),
    min_performance=st.floats(min_value=1.0, max_value=2.0),
    max_price=st.floats(min_value=1.0, max_value=8.0),
)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), request=_request_strategy)
def test_amp_window_fits_budget_and_request(seed, request):
    slots = _random_slot_list(seed, 40)
    window = amp.find_window(slots, request)
    if window is None:
        return
    assert window.satisfies(request, budget=request.budget)
    for allocation in window.allocations:
        assert allocation.source in slots


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), request=_request_strategy)
def test_amp_never_later_than_alp(seed, request):
    """Section 6: any ALP window is also an AMP window, so AMP's earliest
    start can never come after ALP's."""
    slots = _random_slot_list(seed, 40)
    alp_window = alp.find_window(slots, request)
    if alp_window is None:
        return
    amp_window = amp.find_window(slots, request)
    assert amp_window is not None, "AMP must succeed whenever ALP does"
    assert amp_window.start <= alp_window.start + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    request=_request_strategy,
    rho=st.floats(min_value=0.3, max_value=1.0),
)
def test_amp_budget_shrink_monotone(seed, request, rho):
    """A shrunk budget can only delay (or lose) the window, never make
    it cheaper than the budget allows."""
    slots = _random_slot_list(seed, 40)
    full = amp.find_window(slots, request)
    shrunk = amp.find_window(slots, request, budget=request.scaled_budget(rho))
    if shrunk is not None:
        assert shrunk.cost <= request.scaled_budget(rho) + 1e-9
        assert full is not None
        assert full.start <= shrunk.start + 1e-9
