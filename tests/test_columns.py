"""Unit tests for the array-backed column store (repro.core.columns).

The load-bearing property is **mask/kernel parity**: the vectorized
survivor mask of :meth:`ColumnStore.survivors` must be bit-for-bit
interchangeable with mapping the scalar :func:`static_survivor` kernel
over every row — same survivor set, same precomputed runtimes — because
the serial index and the shard states build their memos through either
form depending on whether numpy is present and whether the memo is
being built (vectorized) or maintained (scalar).
"""

from __future__ import annotations

import random

import pytest

import repro.core.columns as columns_module
from repro.core.columns import ColumnStore, Row, static_survivor


def random_rows(seed: int, count: int = 60) -> list[Row]:
    """Rows with adversarial floats: shared starts, tiny spans, ties."""
    rng = random.Random(seed)
    rows: list[Row] = []
    for uid in range(count):
        start = rng.uniform(0.0, 50.0)
        length = rng.uniform(0.1, 120.0)
        performance = rng.uniform(1.0, 3.0)
        price = rng.uniform(1.0, 6.0)
        rows.append((start, start + length, uid, performance, price))
    return rows


def scalar_survivors(
    store: ColumnStore, volume: float, min_performance: float, max_price: float | None
) -> tuple[list, list[int]]:
    entries, positions = [], []
    for position in range(len(store)):
        entry = static_survivor(
            store.row_at(position), volume, min_performance, max_price
        )
        if entry is not None:
            entries.append(entry)
            positions.append(position)
    return entries, positions


class TestMaskKernelParity:
    @pytest.mark.parametrize("seed", range(20))
    def test_vectorized_equals_scalar_bit_for_bit(self, seed):
        store = ColumnStore(random_rows(seed))
        rng = random.Random(seed ^ 0xC01)
        for _ in range(12):
            volume = rng.uniform(1.0, 250.0)
            min_performance = rng.uniform(0.5, 3.5)
            max_price = None if rng.random() < 0.3 else rng.uniform(0.5, 7.0)
            vec = store.survivors(volume, min_performance, max_price)
            scal = scalar_survivors(store, volume, min_performance, max_price)
            # Tuple equality over floats is exact: any rounding drift in
            # the vectorized runtime division would fail here.
            assert vec == scal

    def test_degenerate_request_keeps_all_rows(self):
        # The sharded hint_skippable probe scans with volume 0 and an
        # unbounded performance floor: every row must survive with
        # runtime exactly 0.0.
        store = ColumnStore(random_rows(3))
        entries, positions = store.survivors(0.0, float("-inf"), None)
        assert positions == list(range(len(store)))
        assert all(entry[5] == 0.0 for entry in entries)

    def test_scalar_fallback_without_numpy(self, monkeypatch):
        store = ColumnStore(random_rows(7))
        vectorized = store.survivors(40.0, 1.2, 4.0)
        monkeypatch.setattr(columns_module, "_np", None)
        assert store.survivors(40.0, 1.2, 4.0) == vectorized
        assert store.count_end_at_or_before(30.0) == sum(
            1 for end in store.ends if end <= 30.0
        )


class TestStoreMutation:
    def test_rows_sorted_on_build_and_after_inserts(self):
        rows = random_rows(11)
        store = ColumnStore(rows)
        assert store.rows() == sorted(rows, key=lambda r: (r[0], r[1], r[2]))
        store.insert_row((-5.0, 1.0, 99, 2.0, 1.0))
        store.insert_row((1000.0, 1001.0, 98, 2.0, 1.0))
        listed = store.rows()
        assert listed == sorted(listed, key=lambda r: (r[0], r[1], r[2]))
        assert len(store) == len(rows) + 2

    def test_delete_returns_row_and_updates_uid_presence(self):
        store = ColumnStore([(0.0, 10.0, 1, 1.0, 1.0), (5.0, 15.0, 2, 1.0, 1.0)])
        position = store.bisect_key((5.0, 15.0, 2))
        assert store.delete_at(position) == (5.0, 15.0, 2, 1.0, 1.0)
        assert not store.uid_present(2)
        assert store.uid_present(1)

    def test_bisect_key_matches_list_semantics(self):
        store = ColumnStore(random_rows(5))
        rows = store.rows()
        for row in rows:
            key = (row[0], row[1], row[2])
            assert store.key_at(store.bisect_key(key)) == key
        assert store.bisect_key((float("inf"), 0.0, 0)) == len(store)


class TestSameUidOverlap:
    def overlap_exists(self, store: ColumnStore, start, end, uid) -> bool:
        return any(
            row[2] == uid and row[0] < end and row[1] > start
            for row in store.rows()
        )

    def test_absent_uid_short_circuits(self):
        store = ColumnStore(random_rows(2))
        assert store.find_same_uid_overlap(0.0, 1e9, 12345) is None

    def test_touching_spans_do_not_overlap(self):
        store = ColumnStore([(0.0, 10.0, 1, 1.0, 1.0), (20.0, 30.0, 1, 1.0, 1.0)])
        assert store.find_same_uid_overlap(10.0, 20.0, 1) is None
        assert store.find_same_uid_overlap(30.0, 40.0, 1) is None
        assert store.find_same_uid_overlap(0.0, 0.0 + 1e-9, 1) == (0.0, 10.0)

    def test_row_reaching_past_insertion_point_is_found(self):
        # The overlapping row starts before the probe span, so only the
        # leftward walk can find it.
        store = ColumnStore(
            [(0.0, 50.0, 1, 1.0, 1.0), (5.0, 6.0, 2, 1.0, 1.0), (7.0, 8.0, 3, 1.0, 1.0)]
        )
        assert store.find_same_uid_overlap(10.0, 20.0, 1) == (0.0, 50.0)

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_linear_reference_on_disjoint_rows(self, seed):
        # Same-uid rows kept disjoint, as the index invariant guarantees.
        rng = random.Random(seed)
        rows: list[Row] = []
        for uid in range(6):
            cursor = rng.uniform(0.0, 5.0)
            for _ in range(rng.randint(1, 5)):
                length = rng.uniform(0.5, 10.0)
                rows.append((cursor, cursor + length, uid, 1.0, 1.0))
                cursor += length + rng.uniform(0.0, 4.0)
        store = ColumnStore(rows)
        for _ in range(60):
            start = rng.uniform(-5.0, 60.0)
            end = start + rng.uniform(0.1, 15.0)
            uid = rng.randint(0, 7)
            found = store.find_same_uid_overlap(start, end, uid)
            # The bisected probe must agree with the linear reference on
            # *existence*; when it reports a hit, the witness span must be
            # a genuine same-uid overlap (any such row is acceptable).
            if self.overlap_exists(store, start, end, uid):
                assert found is not None
                witness_start, witness_end = found
                assert witness_start < end and witness_end > start
                assert (witness_start, witness_end) in {
                    (row[0], row[1]) for row in store.rows() if row[2] == uid
                }
            else:
                assert found is None
