"""Tests for the telemetry layer (metrics, spans, events, exporters)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core import SchedulingError
from repro.core.errors import TelemetryError


@pytest.fixture(autouse=True)
def _inert_telemetry():
    """Every test starts and ends with the disabled default context."""
    obs.disable()
    yield
    obs.disable()


class TestMetricKey:
    def test_bare_name_without_labels(self):
        assert obs.metric_key("search.slots_scanned") == "search.slots_scanned"

    def test_labels_sorted(self):
        key = obs.metric_key("search.windows_found", {"b": "2", "a": "1"})
        assert key == "search.windows_found{a=1,b=2}"


class TestCounter:
    def test_increments(self):
        counter = obs.Counter("jobs")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            obs.Counter("jobs").increment(-1)

    def test_to_dict(self):
        counter = obs.Counter("jobs")
        counter.increment(3)
        assert counter.to_dict() == {"kind": "counter", "name": "jobs", "value": 3.0}


class TestGauge:
    def test_set_overwrites_in_both_directions(self):
        gauge = obs.Gauge("backlog")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        histogram = obs.Histogram("depth", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 555.5
        assert histogram.minimum == 0.5
        assert histogram.maximum == 500.0
        assert histogram.mean == pytest.approx(138.875)

    def test_cumulative_counts_use_le_semantics(self):
        histogram = obs.Histogram("depth", bounds=(1.0, 10.0, 100.0))
        for value in (1.0, 2.0, 200.0):
            histogram.observe(value)
        # 1.0 lands in the first bucket (le), 2.0 in the second, 200.0
        # only in the implicit +Inf bucket (= total count).
        assert histogram.cumulative_counts() == [1, 2, 2]
        assert histogram.count == 3

    def test_quantile(self):
        histogram = obs.Histogram("depth", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 0.6, 0.7, 50.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 100.0
        assert obs.Histogram("empty").quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            obs.Histogram("bad", bounds=(10.0, 1.0))

    def test_to_dict_empty_has_null_extremes(self):
        snapshot = obs.Histogram("empty").to_dict()
        assert snapshot["min"] is None
        assert snapshot["max"] is None
        assert snapshot["buckets"] == []


class TestMetricRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = obs.MetricRegistry()
        first = registry.counter("search.passes", algo="alp")
        first.increment()
        second = registry.counter("search.passes", algo="alp")
        assert first is second
        assert second.value == 1

    def test_labels_partition_instruments(self):
        registry = obs.MetricRegistry()
        registry.counter("windows", algo="alp").increment(2)
        registry.counter("windows", algo="amp").increment(5)
        assert registry.get("windows", algo="alp").value == 2
        assert registry.get("windows", algo="amp").value == 5
        assert registry.get("windows") is None

    def test_kind_mismatch_raises(self):
        registry = obs.MetricRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_iteration_sorted_by_key(self):
        registry = obs.MetricRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert [instrument.name for instrument in registry] == ["a", "b"]

    def test_clear(self):
        registry = obs.MetricRegistry()
        registry.counter("x")
        registry.clear()
        assert len(registry) == 0


class TestSpans:
    def test_nesting_builds_a_tree(self):
        telemetry = obs.Telemetry()
        with telemetry.span("outer", jobs=2):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        assert len(telemetry.traces) == 1
        root = telemetry.traces[0]
        assert root.name == "outer"
        assert root.attributes == {"jobs": 2}
        assert [child.name for child in root.children] == ["inner", "inner"]
        assert root.duration > 0.0

    def test_exception_marks_error_status_and_propagates(self):
        telemetry = obs.Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.span("breaks"):
                raise RuntimeError("boom")
        assert telemetry.traces[0].status == "error"

    def test_span_durations_feed_histogram(self):
        telemetry = obs.Telemetry()
        with telemetry.span("op"):
            pass
        histogram = telemetry.registry.get("span.seconds", span="op")
        assert histogram is not None
        assert histogram.count == 1

    def test_annotate_while_open(self):
        telemetry = obs.Telemetry()
        with telemetry.span("op") as handle:
            handle.annotate(found=7)
        assert telemetry.traces[0].attributes == {"found": 7}

    def test_total_by_name_aggregates_subtree(self):
        telemetry = obs.Telemetry()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        totals = telemetry.traces[0].total_by_name()
        assert set(totals) == {"outer", "inner"}
        assert totals["inner"][0] == 1

    def test_round_trip_through_dict(self):
        telemetry = obs.Telemetry()
        with telemetry.span("outer", algo="amp"):
            with telemetry.span("inner"):
                pass
        payload = telemetry.traces[0].to_dict()
        rebuilt = obs.SpanRecord.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.name == "outer"
        assert rebuilt.attributes == {"algo": "amp"}
        assert rebuilt.children[0].name == "inner"

    def test_max_traces_bounds_retention(self):
        telemetry = obs.Telemetry(max_traces=3)
        for index in range(5):
            with telemetry.span(f"op{index}"):
                pass
        assert [root.name for root in telemetry.traces] == ["op2", "op3", "op4"]


class TestDisabledTelemetry:
    def test_span_returns_shared_noop_singleton(self):
        telemetry = obs.Telemetry(enabled=False)
        first = telemetry.span("anything", jobs=3)
        second = telemetry.span("other")
        assert first is obs.NOOP_SPAN
        assert second is obs.NOOP_SPAN
        with first:
            first.annotate(ignored=True)

    def test_recording_methods_touch_nothing(self):
        telemetry = obs.Telemetry(enabled=False)
        telemetry.count("c")
        telemetry.set_gauge("g", 1.0)
        telemetry.observe("h", 2.0)
        telemetry.event("e", detail="x")
        assert len(telemetry.registry) == 0
        assert len(telemetry.events) == 0
        assert telemetry.traces == []

    def test_default_context_is_disabled(self):
        assert not obs.telemetry_enabled()
        assert obs.span("x") is obs.NOOP_SPAN

    def test_configure_then_disable_swaps_the_active_context(self):
        configured = obs.configure(enabled=True)
        assert obs.get_telemetry() is configured
        assert obs.telemetry_enabled()
        obs.count("swapped")
        assert configured.registry.get("swapped").value == 1
        obs.disable()
        assert not obs.telemetry_enabled()
        assert obs.get_telemetry() is not configured


class TestTracedDecorator:
    def test_records_span_when_enabled(self):
        telemetry = obs.configure(enabled=True)

        @obs.traced("named.op")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert telemetry.traces[0].name == "named.op"

    def test_defaults_to_qualified_name(self):
        telemetry = obs.configure(enabled=True)

        @obs.traced()
        def helper():
            return "ok"

        assert helper() == "ok"
        assert "helper" in telemetry.traces[0].name

    def test_transparent_when_disabled(self):
        @obs.traced()
        def work():
            return 42

        assert work() == 42
        assert obs.get_telemetry().traces == []


class TestRingBuffer:
    def test_evicts_oldest_beyond_capacity(self):
        ring = obs.RingBuffer(capacity=3)
        for index in range(5):
            ring.append({"i": index})
        assert [event["i"] for event in ring] == [2, 3, 4]
        assert len(ring) == 3
        assert ring.capacity == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            obs.RingBuffer(capacity=0)


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.JsonlSink(str(path)) as sink:
            sink.emit({"a": 1})
            sink.emit_many([{"b": 2}, {"c": 3}])
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_emit_after_close_raises(self, tmp_path):
        sink = obs.JsonlSink(str(tmp_path / "e.jsonl"))
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError):
            sink.emit({"late": True})

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = obs.JsonlSink(str(path))
        sink.close()
        assert not path.exists()


def _populated_telemetry() -> obs.Telemetry:
    telemetry = obs.Telemetry()
    telemetry.count("search.slots_scanned", 120, algo="amp")
    telemetry.set_gauge("meta.backlog", 4)
    telemetry.observe("search.alternatives_per_job", 7)
    telemetry.event("meta.iteration", index=0, scheduled=2)
    with telemetry.span("scheduler.schedule", jobs=2):
        with telemetry.span("phase1.find_alternatives"):
            pass
    return telemetry


class TestTraceExport:
    def test_jsonl_round_trip(self, tmp_path):
        telemetry = _populated_telemetry()
        path = tmp_path / "trace.jsonl"
        lines = obs.write_trace(str(path), telemetry)
        # meta + 4 metrics (incl. 2 span.seconds histograms) + 1 span tree
        # + 1 event
        assert lines == len(path.read_text().splitlines())
        data = obs.read_trace(str(path))
        assert data.meta["format"] == obs.TRACE_FORMAT
        assert data.metric_value("search.slots_scanned{algo=amp}") == 120
        assert data.metric_value("meta.backlog") == 4
        assert len(data.spans) == 1
        assert data.spans[0].children[0].name == "phase1.find_alternatives"
        assert data.events[0]["name"] == "meta.iteration"

    def test_span_aggregates(self, tmp_path):
        telemetry = _populated_telemetry()
        path = tmp_path / "trace.jsonl"
        obs.write_trace(str(path), telemetry)
        aggregates = obs.read_trace(str(path)).span_aggregates()
        assert aggregates["scheduler.schedule"][0] == 1
        assert aggregates["phase1.find_alternatives"][0] == 1

    def test_missing_file_raises_telemetry_error(self, tmp_path):
        with pytest.raises(TelemetryError):
            obs.read_trace(str(tmp_path / "absent.jsonl"))

    def test_unwritable_path_raises_telemetry_error(self, tmp_path):
        telemetry = _populated_telemetry()
        with pytest.raises(TelemetryError):
            obs.write_trace(str(tmp_path / "no" / "dir" / "t.jsonl"), telemetry)

    def test_telemetry_error_is_a_scheduling_error(self):
        assert issubclass(TelemetryError, SchedulingError)

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(TelemetryError):
            obs.read_trace(str(path))

    def test_unknown_format_raises(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"kind": "meta", "format": "v999"}) + "\n")
        with pytest.raises(TelemetryError):
            obs.read_trace(str(path))

    def test_unknown_record_kind_raises(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(TelemetryError):
            obs.read_trace(str(path))

    def test_truncated_tail_is_diagnosed_as_truncation(self, tmp_path):
        # A SIGKILL mid-append leaves half a JSON line at the end; the
        # diagnosis must say so (with the line number), not just
        # "not valid JSON".
        telemetry = _populated_telemetry()
        path = tmp_path / "cut.jsonl"
        obs.write_trace(str(path), telemetry)
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        lines = len(path.read_text().splitlines())
        with pytest.raises(TelemetryError, match=rf"cut\.jsonl:{lines}: truncated"):
            obs.read_trace(str(path))

    def test_mid_file_corruption_is_not_reported_as_truncation(self, tmp_path):
        path = tmp_path / "mid.jsonl"
        path.write_text("{broken\n" + json.dumps({"kind": "event"}) + "\n")
        with pytest.raises(TelemetryError, match="not valid JSON"):
            obs.read_trace(str(path))

    def test_non_object_line_raises_not_tracebacks(self, tmp_path):
        # A bare array parses as JSON but is not a record; this used to
        # escape as AttributeError on .get().
        path = tmp_path / "arr.jsonl"
        path.write_text("[1, 2, 3]\n" + json.dumps({"kind": "event"}) + "\n")
        with pytest.raises(TelemetryError, match="expected a JSON object"):
            obs.read_trace(str(path))

    def test_malformed_span_record_raises_not_tracebacks(self, tmp_path):
        # A span record missing required keys used to escape as KeyError.
        path = tmp_path / "span.jsonl"
        path.write_text(json.dumps({"kind": "span", "duration": 1.0}) + "\n")
        with pytest.raises(TelemetryError, match="malformed span record"):
            obs.read_trace(str(path))


class TestPrometheusText:
    def test_counters_gauges_and_histograms(self):
        telemetry = _populated_telemetry()
        text = obs.prometheus_text(telemetry.registry)
        assert "# TYPE repro_search_slots_scanned counter" in text
        assert 'repro_search_slots_scanned{algo="amp"} 120' in text
        assert "repro_meta_backlog 4" in text
        assert "repro_search_alternatives_per_job_count 1" in text
        assert "repro_search_alternatives_per_job_sum 7" in text
        assert 'le="+Inf"' in text

    def test_empty_registry_renders_empty(self):
        assert obs.prometheus_text(obs.MetricRegistry()) == ""


class TestSummaries:
    def test_render_summary_lists_metrics_and_spans(self):
        telemetry = _populated_telemetry()
        text = obs.render_summary(telemetry)
        assert "search.slots_scanned{algo=amp}" in text
        assert "scheduler.schedule" in text
        assert "events: 1 recorded" in text

    def test_empty_trace_summary(self):
        assert "no data" in obs.render_trace_summary(obs.TraceData())
