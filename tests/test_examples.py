"""Smoke tests: the example scripts must run end to end.

Only the fast examples run here (the ρ sweep iterates hundreds of
scheduling iterations and is exercised by its benchmark instead).
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


class TestExampleScripts:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "ALP:" in out and "AMP:" in out
        assert "batch totals" in out

    def test_paper_example(self, capsys):
        out = _run("paper_example.py", capsys)
        assert "Fig. 2 (a)" in out
        assert "Fig. 3" in out
        assert "cpu6" in out

    def test_time_vs_cost(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["time_vs_cost_optimization.py"])
        out = _run("time_vs_cost_optimization.py", capsys)
        assert "min time" in out and "min cost" in out
        assert "AMP" in out

    def test_failure_injection(self, capsys):
        out = _run("failure_injection.py", capsys)
        assert "outage" in out
        assert "resubmissions" in out

    def test_contingency_strategies(self, capsys):
        out = _run("contingency_strategies.py", capsys)
        assert "committed version" in out
        assert "switch to" in out or "no version survives" in out

    @pytest.mark.slow
    def test_vo_simulation(self, capsys):
        out = _run("vo_simulation.py", capsys)
        assert "metascheduler+AMP" in out
        assert "EASY backfill" in out
