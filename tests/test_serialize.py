"""Round-trip tests for scenario serialization (repro.core.serialize)."""

from __future__ import annotations

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Batch,
    InvalidRequestError,
    Job,
    Resource,
    ResourceRequest,
    Slot,
    SlotList,
    SlotSearchAlgorithm,
    find_alternatives,
)
from repro.core.serialize import (
    FORMAT,
    Scenario,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.sim import JobGenerator, SlotGenerator


def _scenario(seed: int = 4, with_assignment: bool = True) -> Scenario:
    slot_generator = SlotGenerator(seed=seed)
    job_generator = JobGenerator(rng=slot_generator.rng)
    slots = slot_generator.generate()
    batch = job_generator.generate()
    assignment = {}
    if with_assignment:
        result = find_alternatives(
            slots, batch, SlotSearchAlgorithm.AMP, max_alternatives_per_job=1
        )
        assignment = {
            job: windows[0] for job, windows in result.alternatives.items() if windows
        }
    return Scenario(slots, batch, assignment)


class TestRoundTrip:
    def test_slots_survive(self):
        scenario = _scenario(with_assignment=False)
        restored = scenario_from_dict(scenario_to_dict(scenario))
        assert len(restored.slots) == len(scenario.slots)
        for original, copy in zip(scenario.slots, restored.slots):
            assert (original.start, original.end, original.price) == (
                copy.start,
                copy.end,
                copy.price,
            )
            assert original.resource.uid == copy.resource.uid
            assert original.resource.performance == copy.resource.performance

    def test_jobs_survive(self):
        scenario = _scenario(with_assignment=False)
        restored = scenario_from_dict(scenario_to_dict(scenario))
        assert len(restored.batch) == len(scenario.batch)
        for original, copy in zip(scenario.batch, restored.batch):
            assert original.uid == copy.uid
            assert original.name == copy.name
            assert original.request == copy.request

    def test_assignment_survives(self):
        scenario = _scenario()
        assert scenario.assignment, "fixture should produce an assignment"
        restored = scenario_from_dict(scenario_to_dict(scenario))
        assert len(restored.assignment) == len(scenario.assignment)
        by_uid = {job.uid: window for job, window in restored.assignment.items()}
        for job, window in scenario.assignment.items():
            copy = by_uid[job.uid]
            assert copy.start == window.start
            assert copy.cost == pytest.approx(window.cost)
            assert [r.uid for r in copy.resources()] == [
                r.uid for r in window.resources()
            ]

    def test_resource_identity_interned(self):
        scenario = _scenario()
        restored = scenario_from_dict(scenario_to_dict(scenario))
        seen: dict[int, object] = {}
        for slot in restored.slots:
            previous = seen.setdefault(slot.resource.uid, slot.resource)
            assert previous is slot.resource  # same object, not just equal

    def test_infinite_max_price_encoded_as_null(self):
        batch = Batch([Job(ResourceRequest(1, 10.0))])
        scenario = Scenario(_scenario(with_assignment=False).slots, batch)
        data = scenario_to_dict(scenario)
        assert data["jobs"][0]["request"]["max_price"] is None
        restored = scenario_from_dict(data)
        assert math.isinf(restored.batch[0].request.max_price)

    def test_document_is_valid_json(self):
        data = scenario_to_dict(_scenario())
        json.dumps(data)  # must not raise
        assert data["format"] == FORMAT


class TestNonFiniteRejection:
    """NaN/Infinity must be rejected loudly at the serialization boundary.

    A NaN passes bare ``<= 0`` sanity checks (every NaN comparison is
    False) and ``json.dumps`` emits non-standard ``NaN``/``Infinity``
    tokens, so these values would otherwise slip through and corrupt
    schedules downstream.
    """

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_decode_rejects_non_finite_slot_fields(self, bad):
        data = scenario_to_dict(_scenario(with_assignment=False))
        data["slots"][0]["start"] = bad
        with pytest.raises(InvalidRequestError, match="slot start"):
            scenario_from_dict(data)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_decode_rejects_non_finite_resource_price(self, bad):
        data = scenario_to_dict(_scenario(with_assignment=False))
        data["resources"][0]["price"] = bad
        with pytest.raises(InvalidRequestError, match="price"):
            scenario_from_dict(data)

    def test_decode_rejects_nan_volume(self):
        data = scenario_to_dict(_scenario(with_assignment=False))
        data["jobs"][0]["request"]["volume"] = float("nan")
        with pytest.raises(InvalidRequestError, match="volume"):
            scenario_from_dict(data)

    def test_decode_rejects_non_numeric_fields(self):
        data = scenario_to_dict(_scenario(with_assignment=False))
        data["slots"][0]["end"] = "soon"
        with pytest.raises(InvalidRequestError, match="must be a number"):
            scenario_from_dict(data)

    def test_encode_rejects_nan_slot_price(self):
        resource = Resource("n", performance=1.0, price=1.0)
        slot = Slot(resource, 0.0, 10.0, price=float("nan"))
        scenario = Scenario(SlotList([slot]), Batch([Job(ResourceRequest(1, 5.0))]))
        with pytest.raises(InvalidRequestError, match="slot price"):
            scenario_to_dict(scenario)

    def test_encode_rejects_nan_max_price(self):
        request = ResourceRequest(1, 5.0, max_price=float("nan"))
        scenario = Scenario(
            _scenario(with_assignment=False).slots, Batch([Job(request)])
        )
        with pytest.raises(InvalidRequestError, match="max_price"):
            scenario_to_dict(scenario)


class TestFileHelpers:
    def test_save_and_load(self, tmp_path):
        scenario = _scenario()
        path = save_scenario(scenario, tmp_path / "scenario.json")
        restored = load_scenario(path)
        assert len(restored.slots) == len(scenario.slots)
        assert len(restored.assignment) == len(scenario.assignment)


class TestValidation:
    def test_unknown_format_rejected(self):
        with pytest.raises(InvalidRequestError):
            scenario_from_dict({"format": "repro/999"})

    def test_missing_resource_reference_rejected(self):
        data = scenario_to_dict(_scenario(with_assignment=False))
        data["resources"] = []
        with pytest.raises(InvalidRequestError):
            scenario_from_dict(data)

    def test_missing_job_reference_rejected(self):
        data = scenario_to_dict(_scenario())
        data["jobs"] = []
        with pytest.raises(InvalidRequestError):
            scenario_from_dict(data)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_roundtrip_preserves_search_results(seed):
    """Property: searching on a restored slot list gives identical
    windows to searching on the original."""
    scenario = _scenario(seed=seed, with_assignment=False)
    restored = scenario_from_dict(scenario_to_dict(scenario))
    from repro.core import amp

    rng = random.Random(seed)
    request = ResourceRequest(
        node_count=rng.randint(1, 4),
        volume=rng.uniform(30.0, 120.0),
        max_price=rng.uniform(2.0, 6.0),
    )
    original = amp.find_window(scenario.slots, request)
    copy = amp.find_window(restored.slots, request)
    if original is None:
        assert copy is None
    else:
        assert copy is not None
        assert copy.start == original.start
        assert copy.cost == pytest.approx(original.cost)
        assert [r.uid for r in copy.resources()] == [
            r.uid for r in original.resources()
        ]
