"""Tests for schedule strategies / versions (paper Section 7, refs [13,14])."""

from __future__ import annotations

import pytest

from repro.core import (
    Batch,
    Criterion,
    InfeasiblePolicy,
    InvalidRequestError,
    Job,
    ResourceRequest,
    SchedulerConfig,
    SlotSearchAlgorithm,
)
from repro.core.strategy import ScheduleStrategy, build_strategy

from tests.conftest import make_uniform_slots


def _configs() -> dict[str, SchedulerConfig]:
    base = dict(
        infeasible_policy=InfeasiblePolicy.EARLIEST,
        max_alternatives_per_job=4,
    )
    return {
        "amp-time": SchedulerConfig(algorithm=SlotSearchAlgorithm.AMP,
                                    objective=Criterion.TIME, **base),
        "amp-cost": SchedulerConfig(algorithm=SlotSearchAlgorithm.AMP,
                                    objective=Criterion.COST, **base),
        "alp-time": SchedulerConfig(algorithm=SlotSearchAlgorithm.ALP,
                                    objective=Criterion.TIME, **base),
    }


def _batch() -> Batch:
    return Batch(
        [
            Job(ResourceRequest(2, 40.0, max_price=3.0), name="j0", priority=0),
            Job(ResourceRequest(1, 60.0, max_price=3.0), name="j1", priority=1),
        ]
    )


@pytest.fixture
def strategy():
    slots = make_uniform_slots(4, length=400.0, price=2.0)
    return build_strategy(slots, _batch(), _configs())


class TestConstruction:
    def test_one_version_per_config(self, strategy):
        assert len(strategy) == 3
        assert {version.name for version in strategy} == set(_configs())

    def test_lookup_by_name(self, strategy):
        assert strategy.version("amp-time").name == "amp-time"
        with pytest.raises(KeyError):
            strategy.version("missing")

    def test_empty_configs_rejected(self):
        slots = make_uniform_slots(2)
        with pytest.raises(InvalidRequestError):
            build_strategy(slots, _batch(), {})

    def test_duplicate_names_rejected(self, strategy):
        version = strategy.versions[0]
        with pytest.raises(InvalidRequestError):
            ScheduleStrategy([version, version])

    def test_empty_versions_rejected(self):
        with pytest.raises(InvalidRequestError):
            ScheduleStrategy([])

    def test_versions_schedule_all_jobs(self, strategy):
        for version in strategy:
            assert version.scheduled_count == 2
            assert not version.outcome.postponed


class TestBest:
    def test_best_time_has_minimal_time(self, strategy):
        best = strategy.best(Criterion.TIME)
        assert best.total_time == min(v.total_time for v in strategy)

    def test_best_cost_has_minimal_cost(self, strategy):
        best = strategy.best(Criterion.COST)
        assert best.total_cost == min(v.total_cost for v in strategy)

    def test_coverage_dominates_criterion(self):
        # One node: the 2-node job cannot be placed, but the 1-node job
        # can; all versions place 1 of 2 jobs -> coverage ties, then the
        # criterion decides.  (The coverage-dominance rule itself is
        # exercised in TestSurvival below via differing coverage.)
        slots = make_uniform_slots(1, length=400.0, price=2.0)
        strategy = build_strategy(slots, _batch(), _configs())
        best = strategy.best(Criterion.TIME)
        assert best.scheduled_count == 1

    def test_require_full_coverage(self):
        slots = make_uniform_slots(1, length=400.0, price=2.0)
        strategy = build_strategy(slots, _batch(), _configs())
        with pytest.raises(InvalidRequestError):
            strategy.best(require_full_coverage=True)


class TestSurvival:
    def test_survives_unrelated_failure(self, strategy):
        # Fail a resource no version uses (fresh uid far from any node).
        assert strategy.surviving([10**9]) == list(strategy.versions)

    def test_failed_node_kills_versions_using_it(self, strategy):
        version = strategy.versions[0]
        used_uid = next(iter(version.outcome.scheduled_jobs.values())).resources()[0].uid
        survivors = strategy.surviving([used_uid])
        assert version not in survivors

    def test_best_surviving_prefers_intact_version(self, strategy):
        # Kill nodes of the current best until a different version (or
        # None) must be selected; the survivor never uses failed nodes.
        best = strategy.best(Criterion.TIME)
        failed = [
            allocation.resource.uid
            for window in best.outcome.scheduled_jobs.values()
            for allocation in window.allocations
        ]
        survivor = strategy.best_surviving(failed)
        if survivor is not None:
            assert survivor.survives(failed)
            assert survivor.name != best.name

    def test_all_versions_hit_returns_none(self, strategy):
        all_uids = {
            allocation.resource.uid
            for version in strategy
            for window in version.outcome.scheduled_jobs.values()
            for allocation in window.allocations
        }
        assert strategy.best_surviving(all_uids) is None

    def test_survives_accepts_resources_and_uids(self, strategy):
        version = strategy.versions[0]
        resource = next(iter(version.outcome.scheduled_jobs.values())).resources()[0]
        assert not version.survives([resource])
        assert not version.survives([resource.uid])
