"""Unit tests for the incremental slot index (repro.core.index).

The differential suite in ``test_reference_oracles.py`` proves the
indexed finders equivalent to the reference scans; these tests cover the
index's own container contract and its mutation error paths, which the
happy-path equivalence runs never hit.
"""

from __future__ import annotations

import pytest

from repro.core import ResourceRequest, SlotIndex, SlotList, SlotListError
from repro.core import alp

from tests.conftest import make_random_slot_list, make_resource, make_uniform_slots


class TestContainer:
    def test_iterates_in_slot_list_order(self):
        slots = make_random_slot_list(3)
        index = SlotIndex(slots)
        assert len(index) == len(slots)
        assert [
            (s.resource.uid, s.start, s.end) for s in index
        ] == [(s.resource.uid, s.start, s.end) for s in slots]

    def test_slot_list_round_trip(self):
        slots = make_random_slot_list(4)
        materialised = SlotIndex(slots).slot_list()
        assert isinstance(materialised, SlotList)
        assert [(s.start, s.end) for s in materialised] == [
            (s.start, s.end) for s in slots
        ]


class TestCommit:
    def test_commit_splits_source_slot(self):
        slots = make_uniform_slots(2, start=0.0, length=100.0)
        index = SlotIndex(slots)
        request = ResourceRequest(node_count=2, volume=40.0, max_price=2.0)
        window = index.find_alp_window(request)
        assert window is not None
        index.commit(window)
        # Each 100-long slot loses its leading 40-long span.
        assert [(s.start, s.end) for s in index] == [(40.0, 100.0), (40.0, 100.0)]

    def test_commit_twice_raises(self):
        slots = make_uniform_slots(1, start=0.0, length=100.0)
        index = SlotIndex(slots)
        window = index.find_alp_window(
            ResourceRequest(node_count=1, volume=40.0, max_price=2.0)
        )
        index.commit(window)
        with pytest.raises(SlotListError):
            index.commit(window)  # source slot no longer in the index

    def test_find_matches_reference_after_commits(self):
        """After incremental mutations, the index still agrees with a
        fresh reference scan over its materialised list."""
        index = SlotIndex(make_random_slot_list(11, count=30))
        request = ResourceRequest(node_count=2, volume=60.0, max_price=5.0)
        for _ in range(5):
            window = index.find_alp_window(request)
            if window is None:
                break
            reference = alp.find_window(index.slot_list(), request)
            assert reference is not None
            assert reference.start == window.start
            index.commit(window)


class TestInsert:
    def test_insert_restores_subtracted_span(self):
        slots = make_uniform_slots(1, start=0.0, length=100.0)
        index = SlotIndex(slots)
        victim = list(slots)[0]
        removed = index.subtract(victim.resource, 20.0, 60.0)
        # The index stores primitive rows, not Slot objects, so the
        # subtracted slot comes back as a value-equal reconstruction.
        assert removed == victim
        from repro.core import Slot

        index.insert(Slot(victim.resource, 20.0, 60.0, victim.price))
        assert [(s.start, s.end) for s in index] == [
            (0.0, 20.0),
            (20.0, 60.0),
            (60.0, 100.0),
        ]

    def test_insert_overlapping_same_resource_raises(self):
        slots = make_uniform_slots(1, start=0.0, length=100.0)
        index = SlotIndex(slots)
        victim = list(slots)[0]
        from repro.core import Slot

        with pytest.raises(SlotListError):
            index.insert(Slot(victim.resource, 50.0, 150.0, victim.price))

    def test_stale_hint_clamped_after_insert(self):
        # Regression for start_hint monotonicity: subtraction-only
        # mutation lets a caller reuse the previous window's start as a
        # hint, but re-inserting vacant time (hot-swap revocation, outage
        # cancellation) can make *earlier* events feasible again.  A
        # stale hint must not hide them.
        slots = make_uniform_slots(1, start=0.0, length=100.0)
        index = SlotIndex(slots)
        request = ResourceRequest(node_count=1, volume=40.0, max_price=2.0)
        first = index.find_alp_window(request)
        assert first.start == 0.0
        index.commit(first)  # vacant time is now [40, 100)
        second = index.find_alp_window(request, start_hint=first.start)
        assert second.start == 40.0
        # The committed window is revoked: its span returns to the list.
        from repro.core import Slot

        victim = first.allocations[0]
        index.insert(Slot(victim.resource, victim.start, victim.end, victim.unit_price))
        # With the (now stale) hint of the later window, the finder must
        # still see the re-inserted earlier vacancy.
        again = index.find_alp_window(request, start_hint=second.start)
        assert again is not None
        assert again.start == 0.0

    def test_hint_clamp_matches_reference_scan(self):
        index = SlotIndex(make_random_slot_list(5, count=20))
        request = ResourceRequest(node_count=2, volume=50.0, max_price=5.0)
        window = index.find_alp_window(request)
        assert window is not None
        index.commit(window)
        from repro.core import Slot

        for allocation in window.allocations:
            index.insert(
                Slot(
                    allocation.resource,
                    allocation.start,
                    allocation.end,
                    allocation.unit_price,
                )
            )
        hinted = index.find_alp_window(request, start_hint=1e9)
        reference = alp.find_window(index.slot_list(), request)
        assert (hinted is None) == (reference is None)
        if hinted is not None:
            assert hinted.start == reference.start


class TestSubtract:
    def test_parity_with_slot_list_subtract(self):
        slots = make_random_slot_list(21, count=12)
        index = SlotIndex(slots)
        reference = slots.copy()
        victim = list(slots)[0]
        span = (victim.start + 1.0, victim.end - 1.0)
        index.subtract(victim.resource, *span)
        reference.subtract(victim.resource, *span)
        assert [(s.resource.uid, s.start, s.end) for s in index] == [
            (s.resource.uid, s.start, s.end) for s in reference
        ]

    def test_subtract_missing_span_raises(self):
        index = SlotIndex(make_uniform_slots(1, start=0.0, length=10.0))
        stranger = make_resource("stranger")
        with pytest.raises(SlotListError):
            index.subtract(stranger, 0.0, 5.0)

    def test_subtract_negative_span_raises(self):
        slots = make_uniform_slots(1, start=0.0, length=10.0)
        index = SlotIndex(slots)
        with pytest.raises(SlotListError):
            index.subtract(list(slots)[0].resource, 6.0, 4.0)
