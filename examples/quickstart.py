#!/usr/bin/env python3
"""Quickstart: schedule a small batch on a handful of priced nodes.

Walks the full public API in ~60 lines:

1. describe resources and publish their vacant slots,
2. submit a batch of parallel jobs with economic requirements,
3. find alternative windows with ALP and AMP,
4. let the backward-run optimizer pick the batch-optimal combination.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    Batch,
    BatchScheduler,
    Criterion,
    InfeasiblePolicy,
    Job,
    Resource,
    ResourceRequest,
    SchedulerConfig,
    Slot,
    SlotList,
    SlotSearchAlgorithm,
    find_alternatives,
)


def main() -> None:
    # --- 1. The environment: six nodes, faster ones cost more. ---------
    nodes = [
        Resource("slow-a", performance=1.0, price=1.7),
        Resource("slow-b", performance=1.0, price=1.6),
        Resource("mid-a", performance=2.0, price=2.9),
        Resource("mid-b", performance=2.0, price=3.1),
        Resource("fast-a", performance=3.0, price=5.0),
        Resource("fast-b", performance=3.0, price=4.8),
    ]
    slots = SlotList(Slot(node, 0.0, 500.0) for node in nodes)

    # --- 2. The batch: two parallel jobs with price requirements. ------
    render = Job(
        ResourceRequest(node_count=2, volume=120.0, min_performance=1.0, max_price=3.0),
        name="render",
        priority=0,
    )
    analyze = Job(
        ResourceRequest(node_count=3, volume=60.0, min_performance=2.0, max_price=4.0),
        name="analyze",
        priority=1,
    )
    batch = Batch([render, analyze])

    # --- 3. Alternative search: ALP vs AMP on the same slots. ----------
    for algorithm in SlotSearchAlgorithm:
        result = find_alternatives(slots, batch, algorithm)
        print(f"{algorithm.name}: {result.total_alternatives} alternatives "
              f"({result.counts_by_job()})")

    # --- 4. Full two-phase scheduling (AMP + time minimization). -------
    config = SchedulerConfig(
        algorithm=SlotSearchAlgorithm.AMP,
        objective=Criterion.TIME,
        infeasible_policy=InfeasiblePolicy.EARLIEST,
    )
    outcome = BatchScheduler(config).schedule(slots, batch)
    budget_text = "-" if outcome.budget is None else f"{outcome.budget:.1f}"
    print(f"\nquota T* = {outcome.quota:.1f}, budget B* = {budget_text}")
    for job, window in outcome.scheduled_jobs.items():
        nodes_used = ",".join(resource.name for resource in window.resources())
        print(
            f"  {job.name}: [{window.start:.0f}, {window.end:.0f}) on {nodes_used} "
            f"(time {window.length:.0f}, cost {window.cost:.0f})"
        )
    print(
        f"batch totals: time {outcome.combination.total_time:.0f}, "
        f"cost {outcome.combination.total_cost:.0f}"
    )


if __name__ == "__main__":
    main()
