#!/usr/bin/env python3
"""Domain scenario: a live virtual organization over many iterations.

Builds the full grid substrate — two clusters of priced heterogeneous
nodes, owner-local job flows making the resources non-dedicated — and
runs the iterative metascheduler for a simulated day: global user jobs
arrive over time, each iteration publishes fresh vacant slots, the
two-phase scheduler commits windows, and unlucky jobs are postponed to
later iterations exactly as Section 2 prescribes.

Compares the AMP- and ALP-driven metascheduler end to end on identical
environments, and contrasts both with price-blind EASY backfilling.

Run:  python examples/vo_simulation.py
"""

from __future__ import annotations

import random

from repro.baselines import BackfillScheduler, BackfillVariant
from repro.core import (
    BatchScheduler,
    Criterion,
    InfeasiblePolicy,
    Job,
    SchedulerConfig,
    SlotSearchAlgorithm,
)
from repro.grid import ClusterSpec, LocalJobFlow, Metascheduler, VOEnvironment
from repro.sim import JobGenerator, table

SEED = 7
DAY = 3000.0
JOB_COUNT = 30


def build_environment() -> VOEnvironment:
    """Two clusters with local load — rebuilt identically per scheduler."""
    environment = VOEnvironment.generate(
        [
            ClusterSpec("hpc", node_count=8, performance_range=(1.5, 3.0)),
            ClusterSpec("campus", node_count=10, performance_range=(1.0, 2.0)),
        ],
        seed=SEED,
    )
    flow = LocalJobFlow(seed=SEED)
    for cluster in environment.clusters:
        flow.occupy(cluster, 0.0, DAY + 2000.0)
    return environment


def submissions() -> list[tuple[float, Job]]:
    """The same arrival stream for every scheduler under test."""
    generator = JobGenerator(seed=SEED)
    rng = random.Random(SEED)
    jobs = []
    for index in range(JOB_COUNT):
        request = generator.generate_request()
        jobs.append((rng.uniform(0.0, DAY * 0.6), Job(request, name=f"g{index}")))
    return sorted(jobs, key=lambda pair: pair[0])


def run_metascheduler(algorithm: SlotSearchAlgorithm) -> tuple[str, list[str]]:
    environment = build_environment()
    scheduler = BatchScheduler(
        SchedulerConfig(
            algorithm=algorithm,
            objective=Criterion.TIME,
            infeasible_policy=InfeasiblePolicy.EARLIEST,
        )
    )
    meta = Metascheduler(environment, scheduler, period=100.0, horizon=1200.0)
    for at_time, job in submissions():
        meta.submit(job, at_time=at_time)
    meta.run(until=DAY)
    summary = meta.trace.summary()
    postponements = sum(report.postponed for report in meta.reports)
    return (
        f"metascheduler+{algorithm.name}",
        [
            f"{summary.scheduled}/{summary.submitted}",
            f"{summary.mean_wait_time:.1f}" if summary.mean_wait_time is not None else "-",
            f"{summary.mean_execution_time:.1f}" if summary.mean_execution_time else "-",
            f"{summary.mean_cost:.1f}" if summary.mean_cost else "-",
            str(postponements),
        ],
    )


def run_backfill() -> tuple[str, list[str]]:
    environment = build_environment()
    nodes = [node for cluster in environment.clusters for node in cluster]
    scheduler = BackfillScheduler(nodes, variant=BackfillVariant.EASY)
    stream = submissions()
    assignments = scheduler.schedule([job for _, job in stream], now=0.0)
    by_name = {assignment.job.name: assignment for assignment in assignments}
    waits, execs, costs = [], [], []
    for at_time, job in stream:
        assignment = by_name.get(job.name)
        if assignment is None:
            continue
        waits.append(max(0.0, assignment.start - at_time))
        execs.append(assignment.duration)
        costs.append(assignment.cost)
    mean = lambda xs: sum(xs) / len(xs) if xs else float("nan")
    return (
        "EASY backfill (price-blind)",
        [
            f"{len(assignments)}/{len(stream)}",
            f"{mean(waits):.1f}",
            f"{mean(execs):.1f}",
            f"{mean(costs):.1f}",
            "-",
        ],
    )


def main() -> None:
    rows = []
    for algorithm in (SlotSearchAlgorithm.AMP, SlotSearchAlgorithm.ALP):
        name, cells = run_metascheduler(algorithm)
        rows.append([name] + cells)
    name, cells = run_backfill()
    rows.append([name] + cells)
    print(
        table(
            rows,
            header=["scheduler", "placed", "mean wait", "mean exec", "mean cost", "postponements"],
        )
    )
    print(
        "\nnotes: backfill blocks whole etalon durations (no speedup from fast\n"
        "nodes) and ignores prices entirely; the economic schedulers trade a\n"
        "little money for much shorter executions, AMP more aggressively than ALP."
    )


if __name__ == "__main__":
    main()
