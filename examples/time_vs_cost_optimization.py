#!/usr/bin/env python3
"""Domain scenario: one VO iteration optimized for time, then for cost.

Uses the paper's Section 5 generators to draw one realistic scheduling
iteration (≈135 vacant slots, 3-7 parallel jobs), then runs the complete
two-phase pipeline four ways — {ALP, AMP} × {min time under B*, min cost
under T*} — and prints the resulting combinations side by side.  This is
the single-iteration view of what Figs. 4 and 6 average over thousands
of iterations.

Run:  python examples/time_vs_cost_optimization.py [seed]
"""

from __future__ import annotations

import sys

from repro.core import Criterion, SlotSearchAlgorithm
from repro.sim import JobGenerator, SlotGenerator, run_pipeline, table


def main(seed: int = 20110368) -> None:
    # Draw until we hit an iteration feasible for all four pipelines
    # (the paper likewise counts only mutually-successful iterations).
    slot_generator = SlotGenerator(seed=seed)
    job_generator = JobGenerator(rng=slot_generator.rng)
    for attempt in range(200):
        slots = slot_generator.generate()
        batch = job_generator.generate()
        outcomes = {}
        for algorithm in SlotSearchAlgorithm:
            for objective in Criterion:
                outcome = run_pipeline(slots, batch, algorithm, objective)
                if outcome is None:
                    break
                outcomes[(algorithm, objective)] = outcome
            else:
                continue
            break
        if len(outcomes) == 4:
            break
    else:
        raise SystemExit("no mutually feasible iteration found (raise the attempt cap)")

    print(f"iteration drawn after {attempt + 1} attempt(s): "
          f"{len(slots)} slots, {len(batch)} jobs\n")
    for job in batch:
        request = job.request
        print(f"  {job.name}: N={request.node_count}, t={request.volume:.0f}, "
              f"P>={request.min_performance:.2f}, C<={request.max_price:.2f}")
    print()

    rows = []
    for (algorithm, objective), (sample, combination) in outcomes.items():
        rows.append(
            [
                algorithm.name,
                f"min {objective.value}",
                f"{combination.total_time:.1f}",
                f"{combination.total_cost:.1f}",
                f"{sample.total_alternatives}",
                f"{sample.quota:.0f}",
                "-" if sample.budget is None else f"{sample.budget:.0f}",
            ]
        )
    print(
        table(
            rows,
            header=["search", "objective", "T(s̄)", "C(s̄)", "alts", "T*", "B*"],
        )
    )
    print()

    time_alp = outcomes[(SlotSearchAlgorithm.ALP, Criterion.TIME)][1]
    time_amp = outcomes[(SlotSearchAlgorithm.AMP, Criterion.TIME)][1]
    gain = (time_alp.total_time - time_amp.total_time) / time_alp.total_time
    print(f"on this iteration AMP's batch finishes {100 * gain:.0f}% sooner "
          f"under time minimization — the effect Fig. 4/5 averages.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20110368)
