#!/usr/bin/env python3
"""Extension scenario: the Section 6 budget factor ρ and demand pricing.

The paper proposes shrinking AMP's job budget to ``S = ρ·C·t·N`` so that
"variation of ρ allows to obtain flexible distribution schedules on
different scheduling periods, depending on the time of day, resource
load level, etc.".  This example sweeps ρ over the Section 5 workload
and shows the knob working: smaller ρ pushes AMP toward ALP-like costs
at the price of later/slower windows and fewer alternatives.

It then couples ρ with the future-work demand-adjusted pricing model:
as utilization rises, prices surge, and a time-of-day policy can lower ρ
to keep spending flat.

Run:  python examples/rho_pricing_sweep.py
"""

from __future__ import annotations

from repro.core import Criterion, DemandAdjustedPricing
from repro.sim import ExperimentConfig, ExperimentRunner, summarize, table

ITERATIONS = 150
SEED = 424242


def sweep_rho() -> None:
    rows = []
    for rho in (1.0, 0.9, 0.8, 0.7):
        config = ExperimentConfig(
            objective=Criterion.TIME,
            iterations=ITERATIONS,
            seed=SEED,
            rho=rho,
        )
        summary = summarize(ExperimentRunner(config).run())
        ratios = summary.ratios()
        rows.append(
            [
                f"{rho:.1f}",
                str(summary.counted),
                f"{summary.amp.mean_job_time:.1f}",
                f"{summary.amp.mean_job_cost:.1f}",
                f"{summary.amp.mean_alternatives_per_job:.1f}",
                f"{100 * ratios.amp_cost_premium:+.0f}%",
            ]
        )
    print("AMP under shrinking budgets S = ρ·C·t·N (time minimization):")
    print(
        table(
            rows,
            header=["ρ", "counted", "AMP time", "AMP cost", "AMP alts/job", "cost vs ALP"],
        )
    )


def demand_pricing_story() -> None:
    pricing = DemandAdjustedPricing(sensitivity=0.6)
    print("\ndemand-adjusted pricing (future-work model):")
    rows = []
    for utilization, rho in ((0.2, 1.0), (0.5, 0.9), (0.8, 0.8)):
        multiplier = pricing.multiplier(utilization)
        rows.append(
            [
                f"{utilization:.0%}",
                f"x{multiplier:.2f}",
                f"{rho:.1f}",
                f"x{multiplier * rho:.2f}",
            ]
        )
    print(
        table(
            rows,
            header=["utilization", "price surge", "policy ρ", "effective spend factor"],
        )
    )
    print(
        "\nlowering ρ as demand surges keeps the effective spending factor\n"
        "roughly flat — the scheduling-period policy Section 6 sketches."
    )


def main() -> None:
    sweep_rho()
    demand_pricing_story()


if __name__ == "__main__":
    main()
