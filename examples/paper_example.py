#!/usr/bin/env python3
"""Replay of the paper's Section 4 worked example (Figs. 2 and 3).

Reconstructs the six-node environment with seven local tasks, runs the
AMP alternative search for the three-job batch, and prints:

* the initial state chart (Fig. 2 (a)),
* the first-iteration windows W1, W2, W3 (Fig. 2 (b)),
* the final chart of all alternatives (Fig. 3),
* the ALP comparison showing cpu6 (price 12) is out of ALP's reach.

Run:  python examples/paper_example.py
"""

from __future__ import annotations

from repro.core import SlotSearchAlgorithm, find_alternatives
from repro.core import amp
from repro.examples_data import HORIZON, build_example
from repro.sim.gantt import GanttChart


def main() -> None:
    example = build_example()

    # ------- Fig. 2 (a): the initial state of the environment ---------
    initial = GanttChart(HORIZON)
    initial.paint_slots(example.slots)
    print(initial.render(title="Fig. 2 (a) — initial state: vacant slots 0..9"))
    print()

    # ------- Fig. 2 (b): first iteration, windows W1..W3 --------------
    slots = example.slots.copy()
    first_windows = []
    for job in example.batch:
        window = amp.find_window(slots, job.request)
        assert window is not None
        for resource, start, end in window.occupied_spans():
            slots.subtract(resource, start, end)
        first_windows.append((f"W{len(first_windows) + 1} ({job.name})", window))
    first = GanttChart(HORIZON)
    first.paint_slots(example.slots)
    first.paint_windows(first_windows)
    print(first.render(title="Fig. 2 (b) — alternatives found in the first pass"))
    print()

    # ------- Fig. 3: the final chart of all AMP alternatives ----------
    result = find_alternatives(example.slots, example.batch, SlotSearchAlgorithm.AMP)
    final = GanttChart(HORIZON)
    final.paint_slots(example.slots)
    final.paint_windows(
        [
            (f"{job.name}#{index + 1}", window)
            for job, windows in result.alternatives.items()
            for index, window in enumerate(windows)
        ]
    )
    print(final.render(title="Fig. 3 — all alternatives found by AMP"))
    print()

    # ------- The ALP comparison of Sections 4 and 6 --------------------
    alp_result = find_alternatives(example.slots, example.batch, SlotSearchAlgorithm.ALP)
    def uses_cpu6(windows) -> int:
        return sum(
            1
            for window in windows
            if any(resource.name == "cpu6" for resource in window.resources())
        )

    amp_cpu6 = sum(uses_cpu6(ws) for ws in result.alternatives.values())
    alp_cpu6 = sum(uses_cpu6(ws) for ws in alp_result.alternatives.values())
    print(f"AMP found {result.total_alternatives} alternatives, "
          f"{amp_cpu6} of them on cpu6 (price 12).")
    print(f"ALP found {alp_result.total_alternatives} alternatives, "
          f"{alp_cpu6} on cpu6 — its per-slot price cap (30/3 = 10 for job2) "
          "can never afford that node.")


if __name__ == "__main__":
    main()
