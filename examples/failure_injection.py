#!/usr/bin/env python3
"""Extension scenario: VO dynamics — arrivals, node failures, recovery.

Section 7 motivates co-scheduling strategies with "the distributed
environment dynamics, namely, changes in the number of jobs for
servicing ... possible failures of computational nodes".  This example
runs the discrete-event driver with all three event sources:

* a Poisson stream of global jobs,
* periodic scheduling iterations,
* seeded per-node outage streams (MTBF/MTTR renewal processes from
  ``repro.grid.resilience``) plus two hand-placed outages.

The metascheduler runs with the alternative-backed recovery subsystem
enabled: a revoked job is first re-committed onto one of its unused
phase-1 alternatives (*hot-swap*), then via an immediate re-search, and
only then resubmitted with bounded backoff — or dropped once its
revocation budget is exhausted.  Watch the log: most revocations are
healed inside the outage event itself, without a queue round trip.

Run:  python examples/failure_injection.py
"""

from __future__ import annotations

from repro.core import BatchScheduler, InfeasiblePolicy, SchedulerConfig
from repro.grid import (
    ClusterSpec,
    EventKind,
    FailureConfig,
    LocalJobFlow,
    Metascheduler,
    PoissonArrivals,
    RetryPolicy,
    SimulationDriver,
    VOEnvironment,
)

SEED = 13
HORIZON = 2400.0


def main() -> None:
    environment = VOEnvironment.generate(
        [ClusterSpec("grid", node_count=10, performance_range=(1.0, 3.0))],
        seed=SEED,
    )
    LocalJobFlow(seed=SEED).occupy(environment.clusters[0], 0.0, HORIZON + 2000.0)

    scheduler = BatchScheduler(
        SchedulerConfig(infeasible_policy=InfeasiblePolicy.EARLIEST)
    )
    meta = Metascheduler(
        environment,
        scheduler,
        period=120.0,
        horizon=1000.0,
        recovery=RetryPolicy(max_revocations=3, backoff_base=60.0),
    )
    driver = SimulationDriver(meta)

    arrivals = driver.add_arrivals(PoissonArrivals(rate=0.008, seed=SEED), 0.0, HORIZON)
    driver.add_ticks(0.0, HORIZON)
    nodes = list(environment.nodes())
    driver.add_outage(nodes[0], at_time=300.0, duration=600.0)
    driver.add_outage(nodes[5], at_time=900.0, duration=400.0)
    storms = driver.add_failures(
        FailureConfig(mtbf=1500.0, mttr=150.0, seed=SEED), 0.0, HORIZON
    )

    print(f"driving {arrivals} arrivals, {storms + 2} outages, "
          f"{driver.pending_events() - arrivals - storms - 2} ticks\n")
    events = driver.run()

    for event in events:
        if event.kind is EventKind.OUTAGE or (
            event.report is not None and (event.report.scheduled or event.report.postponed)
        ):
            print(f"t={event.time:7.1f}  {event.description}")

    summary = meta.trace.summary()
    resubmissions = sum(record.resubmissions for record in meta.trace)
    recoveries = sum(record.recoveries for record in meta.trace)
    counts = meta.recovery.outcome_counts()
    print(f"\n{summary}")
    print(
        f"revocations: {sum(counts.values())} "
        f"(hot-swapped {counts['hot_swap']}, re-searched {counts['research']}, "
        f"resubmitted {counts['resubmit']}, dropped {counts['reject']})"
    )
    print(
        f"in-place recoveries: {recoveries}; queue resubmissions: {resubmissions}; "
        f"backlog at end: {meta.backlog()}"
    )


if __name__ == "__main__":
    main()
