#!/usr/bin/env python3
"""Extension scenario: schedule *strategies* surviving node failures.

The paper closes with: "in the general case, a set of versions of
scheduling, or a strategy, is required instead of a single version"
(Section 7, refs [13, 14]).  This example builds such a strategy — four
complete schedule versions of the same batch under different
configurations — then fails nodes one by one and shows the strategy
switching to the best surviving version *without rescheduling*.

Run:  python examples/contingency_strategies.py
"""

from __future__ import annotations

from repro.core import (
    Criterion,
    InfeasiblePolicy,
    SchedulerConfig,
    SlotSearchAlgorithm,
    build_strategy,
)
from repro.sim import JobGenerator, SlotGenerator, table

SEED = 2011


def main() -> None:
    slot_generator = SlotGenerator(seed=SEED)
    job_generator = JobGenerator(rng=slot_generator.rng)
    slots = slot_generator.generate()
    batch = job_generator.generate()
    print(f"environment: {len(slots)} vacant slots; batch: {len(batch)} jobs\n")

    base = dict(infeasible_policy=InfeasiblePolicy.EARLIEST, max_alternatives_per_job=6)
    configs = {
        "amp/time": SchedulerConfig(
            algorithm=SlotSearchAlgorithm.AMP, objective=Criterion.TIME, **base
        ),
        "amp/cost": SchedulerConfig(
            algorithm=SlotSearchAlgorithm.AMP, objective=Criterion.COST, **base
        ),
        "amp/frugal": SchedulerConfig(
            algorithm=SlotSearchAlgorithm.AMP, objective=Criterion.COST, rho=0.8, **base
        ),
        "alp/time": SchedulerConfig(
            algorithm=SlotSearchAlgorithm.ALP, objective=Criterion.TIME, **base
        ),
    }
    strategy = build_strategy(slots, batch, configs)

    rows = [
        [
            version.name,
            f"{version.scheduled_count}/{len(batch)}",
            f"{version.total_time:.1f}",
            f"{version.total_cost:.1f}",
            str(len({r.uid for w in version.outcome.scheduled_jobs.values() for r in w.resources()})),
        ]
        for version in strategy
    ]
    print(table(rows, header=["version", "placed", "T(s̄)", "C(s̄)", "nodes used"]))

    primary = strategy.best(Criterion.TIME)
    print(f"\ncommitted version: {primary.name} "
          f"(T={primary.total_time:.1f}, C={primary.total_cost:.1f})")

    # Fail the committed version's nodes one at a time and switch.
    used = sorted(
        {
            allocation.resource
            for window in primary.outcome.scheduled_jobs.values()
            for allocation in window.allocations
        },
        key=lambda resource: resource.uid,
    )
    failed: list[int] = []
    for resource in used[:3]:
        failed.append(resource.uid)
        survivor = strategy.best_surviving(failed, Criterion.TIME)
        if survivor is None:
            print(f"after failing {len(failed)} node(s): no version survives — "
                  "a rescheduling pass is unavoidable")
            break
        print(f"after failing {resource.name}: switch to {survivor.name} "
              f"(T={survivor.total_time:.1f}, C={survivor.total_cost:.1f}, "
              f"survives {len(strategy.surviving(failed))}/{len(strategy)} versions)")


if __name__ == "__main__":
    main()
